package lan

// Benchmarks mirroring the paper's evaluation (one per table/figure; see
// DESIGN.md's per-experiment index). Each benchmark measures the per-query
// (or per-pair) work of one method and reports recall/NDC as custom
// metrics, so `go test -bench=.` traces the same comparisons the figures
// plot. The expensive environments (index construction + model training)
// are built once and shared.

import (
	"math/rand"
	"sync"
	"testing"

	"github.com/lansearch/lan/ged"
	"github.com/lansearch/lan/graph"
	"github.com/lansearch/lan/internal/cg"
	"github.com/lansearch/lan/internal/core"
	"github.com/lansearch/lan/internal/dataset"
	"github.com/lansearch/lan/internal/experiments"
	"github.com/lansearch/lan/internal/models"
	"github.com/lansearch/lan/internal/nn"
	"github.com/lansearch/lan/internal/pg"
	"github.com/lansearch/lan/internal/route"
)

// benchProtocol is sized so the full -bench=. run finishes in minutes.
func benchProtocol() experiments.Protocol {
	return experiments.Protocol{
		Scale:       0.004,
		Queries:     20,
		K:           5,
		Beams:       []int{8, 16},
		BuildMetric: ged.Ensemble{BeamWidth: 2},
		QueryMetric: ged.Ensemble{ExactBudget: 50, BeamWidth: 2},
		TrainEpochs: 3,
		Dim:         16,
		Seed:        1,
	}
}

var benchEnvs struct {
	mu   sync.Mutex
	envs map[string]*experiments.Env
}

func benchEnv(b *testing.B, spec dataset.Spec) *experiments.Env {
	b.Helper()
	benchEnvs.mu.Lock()
	defer benchEnvs.mu.Unlock()
	if benchEnvs.envs == nil {
		benchEnvs.envs = make(map[string]*experiments.Env)
	}
	if env, ok := benchEnvs.envs[spec.Name]; ok {
		return env
	}
	env, err := experiments.NewEnv(benchProtocol(), spec)
	if err != nil {
		b.Fatalf("NewEnv: %v", err)
	}
	benchEnvs.envs[spec.Name] = env
	return env
}

func benchAIDS(b *testing.B) *experiments.Env {
	return benchEnv(b, dataset.AIDS(benchProtocol().Scale))
}

// benchSearch measures one strategy pair per iteration, reporting recall
// and NDC.
func benchSearch(b *testing.B, env *experiments.Env, is core.InitialStrategy, rt core.RoutingStrategy) {
	b.Helper()
	p := env.Protocol
	var recall, ndc float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		qi := i % len(env.Test)
		res, stats := env.Engine.Search(env.Test[qi], core.SearchOptions{
			K: p.K, Beam: p.Beams[len(p.Beams)-1], Initial: is, Routing: rt,
		})
		recall += dataset.Recall(res, env.Truth[qi].Results)
		ndc += float64(stats.NDC)
	}
	b.ReportMetric(recall/float64(b.N), "recall@k")
	b.ReportMetric(ndc/float64(b.N), "NDC/query")
}

// BenchmarkTable1Stats regenerates Table I's statistics.
func BenchmarkTable1Stats(b *testing.B) {
	spec := dataset.AIDS(0.002)
	for i := 0; i < b.N; i++ {
		db := spec.Generate()
		st := db.Stats()
		if st.Graphs == 0 {
			b.Fatal("empty dataset")
		}
	}
}

// Fig 5: end-to-end methods.

func BenchmarkFig5LAN(b *testing.B) {
	benchSearch(b, benchAIDS(b), core.LANIS, core.LANRoute)
}

func BenchmarkFig5HNSW(b *testing.B) {
	benchSearch(b, benchAIDS(b), core.HNSWIS, core.BaselineRoute)
}

func BenchmarkFig5L2route(b *testing.B) {
	env := benchAIDS(b)
	p := env.Protocol
	var recall, ndc float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		qi := i % len(env.Test)
		cache := pg.NewDistCache(p.QueryMetric, env.DB, env.Test[qi])
		res, stats := env.L2.Search(env.Test[qi], cache, p.K, 3*p.Beams[len(p.Beams)-1], 3*p.Beams[len(p.Beams)-1])
		recall += dataset.Recall(res, env.Truth[qi].Results)
		ndc += float64(stats.NDC)
	}
	b.ReportMetric(recall/float64(b.N), "recall@k")
	b.ReportMetric(ndc/float64(b.N), "NDC/query")
}

// Fig 6: routing isolated (HNSW_IS fixed).

func BenchmarkFig6LANRoute(b *testing.B) {
	benchSearch(b, benchAIDS(b), core.HNSWIS, core.LANRoute)
}

func BenchmarkFig6HNSWRoute(b *testing.B) {
	benchSearch(b, benchAIDS(b), core.HNSWIS, core.BaselineRoute)
}

func BenchmarkFig6OracleRoute(b *testing.B) {
	benchSearch(b, benchAIDS(b), core.HNSWIS, core.OracleRoute)
}

// Fig 7: initial selection isolated (LAN_Route fixed).

func BenchmarkFig7LANIS(b *testing.B) {
	benchSearch(b, benchAIDS(b), core.LANIS, core.LANRoute)
}

func BenchmarkFig7HNSWIS(b *testing.B) {
	benchSearch(b, benchAIDS(b), core.HNSWIS, core.LANRoute)
}

func BenchmarkFig7RandIS(b *testing.B) {
	benchSearch(b, benchAIDS(b), core.RandIS, core.LANRoute)
}

// Fig 8: one M_nh membership prediction.
func BenchmarkFig8MnhPredict(b *testing.B) {
	env := benchAIDS(b)
	q := env.Test[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		env.Engine.Mnh.Predict(env.DB[i%len(env.DB)], q)
	}
}

// Fig 9: one LAN query on the SYN simulator (scalability substrate).
func BenchmarkFig9SYNQuery(b *testing.B) {
	env := benchEnv(b, dataset.SYN(benchProtocol().Scale*42687/1000000))
	benchSearch(b, env, core.LANIS, core.LANRoute)
}

// Fig 10: queries with vs without the CG acceleration.

func BenchmarkFig10WithCG(b *testing.B) {
	benchSearch(b, benchAIDS(b), core.LANIS, core.LANRoute)
}

var fig10RawEngine struct {
	once sync.Once
	eng  *core.Engine
	err  error
}

// rawEngine lazily builds the UseCG=false twin of the shared environment.
func rawEngine(b *testing.B, env *experiments.Env) *core.Engine {
	b.Helper()
	p := env.Protocol
	fig10RawEngine.once.Do(func() {
		queries := dataset.Workload(env.DB, env.Spec, p.Queries, p.Seed+7)
		train, _, _ := dataset.Split(queries)
		fig10RawEngine.eng, fig10RawEngine.err = core.Build(env.DB, train, core.Options{
			M: 6, Dim: p.Dim, GammaKNN: 2 * p.K,
			BuildMetric: p.BuildMetric,
			QueryMetric: p.QueryMetric, UseCG: false,
			Train: models.TrainOptions{Epochs: p.TrainEpochs, LR: 0.01},
			Seed:  p.Seed,
		})
	})
	if fig10RawEngine.err != nil {
		b.Fatal(fig10RawEngine.err)
	}
	return fig10RawEngine.eng
}

func BenchmarkFig10WithoutCG(b *testing.B) {
	env := benchAIDS(b)
	p := env.Protocol
	eng := rawEngine(b, env)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		qi := i % len(env.Test)
		eng.Search(env.Test[qi], core.SearchOptions{
			K: p.K, Beam: p.Beams[len(p.Beams)-1], Initial: core.LANIS, Routing: core.LANRoute,
		})
	}
}

// Fig 11: full LAN query with breakdown metrics, measured on the engine
// without CG acceleration (the paper's "before acceleration" accounting).
func BenchmarkFig11Breakdown(b *testing.B) {
	env := benchAIDS(b)
	p := env.Protocol
	eng := rawEngine(b, env)
	var model, total float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		qi := i % len(env.Test)
		_, stats := eng.Search(env.Test[qi], core.SearchOptions{
			K: p.K, Beam: p.Beams[len(p.Beams)-1], Initial: core.LANIS, Routing: core.LANRoute,
		})
		model += stats.ModelTime.Seconds()
		total += stats.Total.Seconds()
	}
	if total > 0 {
		b.ReportMetric(100*model/total, "model-%")
	}
}

// Fig 12: one cross-graph forward per representation.

func fig12Fixtures(b *testing.B) (*cg.CrossModel, []*graph.Graph, *cg.Vocab) {
	b.Helper()
	db := dataset.AIDS(0.002).Generate()
	vocab := cg.NewVocab(db)
	params := nn.NewParams()
	model := cg.NewCrossModel(params, "b12", cg.Config{Layers: 2, Dim: 16, Vocab: vocab}, rand.New(rand.NewSource(1)))
	return model, db[:16], vocab
}

func BenchmarkFig12RawCrossLearning(b *testing.B) {
	model, gs, vocab := fig12Fixtures(b)
	var pairs [][2]*cg.Compressed
	for i := 0; i+1 < len(gs); i += 2 {
		pairs = append(pairs, [2]*cg.Compressed{cg.BuildRaw(gs[i], 2, vocab), cg.BuildRaw(gs[i+1], 2, vocab)})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pairs[i%len(pairs)]
		model.Forward(p[0], p[1])
	}
}

func BenchmarkFig12CGCrossLearning(b *testing.B) {
	model, gs, vocab := fig12Fixtures(b)
	var pairs [][2]*cg.Compressed
	for i := 0; i+1 < len(gs); i += 2 {
		pairs = append(pairs, [2]*cg.Compressed{cg.Build(gs[i], 2, vocab), cg.Build(gs[i+1], 2, vocab)})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pairs[i%len(pairs)]
		model.Forward(p[0], p[1])
	}
}

func BenchmarkFig12HAGCrossLearning(b *testing.B) {
	model, gs, vocab := fig12Fixtures(b)
	var pairs [][2]*cg.HAG
	for i := 0; i+1 < len(gs); i += 2 {
		pairs = append(pairs, [2]*cg.HAG{
			cg.BuildHAG(cg.BuildRaw(gs[i], 2, vocab), 16),
			cg.BuildHAG(cg.BuildRaw(gs[i+1], 2, vocab), 16),
		})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pairs[i%len(pairs)]
		cg.ForwardCross(model, p[0], p[1])
	}
}

// Substrate microbenchmarks (ablations called out in DESIGN.md).

func BenchmarkGEDHungarian(b *testing.B) {
	db := dataset.AIDS(0.002).Generate()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ged.Hungarian(db[i%len(db)], db[(i+7)%len(db)])
	}
}

func BenchmarkGEDVJ(b *testing.B) {
	db := dataset.AIDS(0.002).Generate()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ged.VJ(db[i%len(db)], db[(i+7)%len(db)])
	}
}

func BenchmarkGEDBeam(b *testing.B) {
	db := dataset.AIDS(0.002).Generate()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ged.Beam(db[i%len(db)], db[(i+7)%len(db)], 8)
	}
}

func BenchmarkGEDEnsembleProtocol(b *testing.B) {
	db := dataset.AIDS(0.002).Generate()
	e := ged.Ensemble{ExactBudget: 400, BeamWidth: 8}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Distance(db[i%len(db)], db[(i+7)%len(db)])
	}
}

func BenchmarkCGBuild(b *testing.B) {
	db := dataset.AIDS(0.002).Generate()
	vocab := cg.NewVocab(db)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cg.Build(db[i%len(db)], 2, vocab)
	}
}

// Ablations called out in DESIGN.md.

// BenchmarkAblationISBasic measures Sec. V-B1's exhaustive design against
// BenchmarkFig7LANIS (the optimized V-B2 design).
func BenchmarkAblationISBasic(b *testing.B) {
	benchSearch(b, benchAIDS(b), core.LANISBasic, core.LANRoute)
}

// benchOracleY runs oracle np_route at a given batch percent y, reporting
// NDC (smaller batches prune more precisely but rank more often).
func benchOracleY(b *testing.B, y int) {
	env := benchAIDS(b)
	p := env.Protocol
	var ndc float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		qi := i % len(env.Test)
		q := env.Test[qi]
		cache := pg.NewDistCache(p.QueryMetric, env.DB, q)
		entry := env.Engine.Index.EntryPoint(cache)
		oracle := &route.OracleRanker{Cache: cache, BatchPercent: y, RankMetric: ged.MetricFunc(ged.Hungarian)}
		_, stats := route.Route(env.Engine.Index.PG, cache, oracle, entry, route.Config{K: p.K, Beam: p.Beams[len(p.Beams)-1]})
		ndc += float64(stats.NDC)
	}
	b.ReportMetric(ndc/float64(b.N), "NDC/query")
}

func BenchmarkAblationBatchY10(b *testing.B) { benchOracleY(b, 10) }
func BenchmarkAblationBatchY20(b *testing.B) { benchOracleY(b, 20) }
func BenchmarkAblationBatchY50(b *testing.B) { benchOracleY(b, 50) }

// benchStepSize runs oracle np_route at a given threshold increment d_s.
func benchStepSize(b *testing.B, ds float64) {
	env := benchAIDS(b)
	p := env.Protocol
	var ndc float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		qi := i % len(env.Test)
		q := env.Test[qi]
		cache := pg.NewDistCache(p.QueryMetric, env.DB, q)
		entry := env.Engine.Index.EntryPoint(cache)
		oracle := &route.OracleRanker{Cache: cache, BatchPercent: 20, RankMetric: ged.MetricFunc(ged.Hungarian)}
		_, stats := route.Route(env.Engine.Index.PG, cache, oracle, entry, route.Config{K: p.K, Beam: p.Beams[len(p.Beams)-1], StepSize: ds})
		ndc += float64(stats.NDC)
	}
	b.ReportMetric(ndc/float64(b.N), "NDC/query")
}

func BenchmarkAblationStepDs1(b *testing.B) { benchStepSize(b, 1) }
func BenchmarkAblationStepDs2(b *testing.B) { benchStepSize(b, 2) }
func BenchmarkAblationStepDs5(b *testing.B) { benchStepSize(b, 5) }
