module github.com/lansearch/lan

go 1.22
