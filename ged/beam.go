package ged

import (
	"sync"

	"github.com/lansearch/lan/graph"
	"github.com/lansearch/lan/internal/order"
)

// beamSearch computes an upper bound of GED via beam search over the same
// state space as A*: at each depth only the w most promising partial
// mappings (by cost + admissible heuristic) are kept. This is the "Beam"
// algorithm of Neuhaus, Riesen and Bunke used in the paper's ground-truth
// protocol. Width w <= 0 defaults to 8.
//
// The kernel is the hottest code in the serving path: every ged.Ensemble
// distance pays at least one beam search, and a single query pays 60-130
// ensemble distances. It therefore runs on a pooled, reusable arena
// (beamCtx) instead of the A* searchCtx: states live in flat per-depth
// arenas, label histograms are dense []int32 counters over interned label
// ids rather than map[string]int, the per-state edge statistics are
// maintained incrementally, and the per-depth frontier truncation is a
// partial top-w heap selection instead of a full sort. Steady-state the
// kernel allocates nothing (see BenchmarkBeamKernel / TestBeamKernelAllocs).
//
// Ties on f are broken by state creation order — the order the old
// sort-based kernel enumerated children in — so the kept frontier is a
// deterministic function of the input pair, not of sort internals.
//
//lan:hotpath
func beamSearch(g, h *graph.Graph, w int) float64 {
	if w <= 0 {
		w = 8
	}
	if g.N() > h.N() {
		g, h = h, g
	}
	c := beamCtxPool.Get().(*beamCtx)
	beamArenaGets.Add(1)
	d := c.run(g, h, w)
	c.g, c.h = nil, nil // do not retain the graphs across pool reuse
	beamCtxPool.Put(c)
	return d
}

var beamCtxPool = sync.Pool{New: func() interface{} {
	beamArenaNews.Add(1)
	return newBeamCtx()
}}

// beamState is one surviving partial mapping of the frontier. phi and used
// are slices into the context's per-depth arenas; the struct itself is
// stored by value in the frontier slice, so keeping a frontier allocates
// nothing.
type beamState struct {
	cost float64
	f    float64
	// usedN counts used h nodes; bothUsed counts h edges with both
	// endpoints used; remEdges counts h edges with both endpoints unused.
	// The three are maintained incrementally so neither the heuristic nor
	// the terminal completion cost ever scans h's edge set.
	usedN    int32
	bothUsed int32
	remEdges int32
	phi      []int32
	used     []uint64
}

// beamCand is a child state before frontier truncation: assignment
// metadata only. phi/used bitsets are materialized for the top-w survivors
// after selection, so the (much larger) rejected majority never pays the
// arena copy.
type beamCand struct {
	cost     float64
	f        float64
	parent   int32
	w        int32 // h node, or unmapped
	usedN    int32
	bothUsed int32
	remEdges int32
}

// beamCtx is the reusable arena for one beam search. All slices grow
// monotonically and are reused across calls via beamCtxPool, so after a
// few calls at the corpus' working sizes the kernel reaches a zero-alloc
// steady state.
type beamCtx struct {
	g, h   *graph.Graph
	gN, hN int
	hWords int
	hM     int32

	// Label interning: labelID maps label strings of both graphs to dense
	// ids; gLab/hLab hold the interned label of each node.
	labelID map[string]int32
	nLabels int
	gLab    []int32
	hLab    []int32

	// Static g-side data (identical to the A* searchCtx, in dense form).
	order       []int32 // g nodes in processing order (degree descending)
	pos         []int32 // pos[u] is the order position of g node u
	suffixHist  []int32 // (gN+1) x nLabels label histogram of order[i:]
	suffixEdges []int32 // edges with both endpoints at positions >= i
	hHist       []int32 // label histogram of h

	// usedHist is the per-parent scratch histogram of used-h-node labels;
	// children adjust it by one label around their heuristic evaluation.
	usedHist []int32

	frontier []beamState
	next     []beamState
	cands    []beamCand
	heap     []int32 // candidate indices, max-heap by (f, creation index)

	// Ping-pong state arenas: the frontier lives in the A buffers while
	// survivors are materialized into the B buffers, then the pair swaps.
	phiA, phiB   []int32
	usedA, usedB []uint64
}

func newBeamCtx() *beamCtx {
	return &beamCtx{labelID: make(map[string]int32)}
}

// intern returns the dense id of label l, assigning the next id on first
// sight.
func (c *beamCtx) intern(l string) int32 {
	if id, ok := c.labelID[l]; ok {
		return id
	}
	id := int32(c.nLabels)
	c.labelID[l] = id
	c.nLabels++
	return id
}

// reset prepares the arena for one (g, h) pair, reusing every buffer that
// is already large enough.
func (c *beamCtx) reset(g, h *graph.Graph) {
	c.g, c.h = g, h
	c.gN, c.hN = g.N(), h.N()
	c.hWords = (c.hN + 63) / 64
	c.hM = int32(h.M())

	clear(c.labelID)
	c.nLabels = 0
	c.gLab = growInt32(c.gLab, c.gN)
	for u := 0; u < c.gN; u++ {
		c.gLab[u] = c.intern(g.Label(u))
	}
	c.hLab = growInt32(c.hLab, c.hN)
	for x := 0; x < c.hN; x++ {
		c.hLab[x] = c.intern(h.Label(x))
	}

	// Degree-descending processing order, exactly as the A* searchCtx
	// computes it (insertion sort moving strictly greater degrees only, so
	// equal degrees keep ascending-id order).
	c.order = growInt32(c.order, c.gN)
	for i := range c.order {
		c.order[i] = int32(i)
	}
	for i := 1; i < c.gN; i++ {
		for j := i; j > 0 && g.Degree(int(c.order[j])) > g.Degree(int(c.order[j-1])); j-- {
			c.order[j], c.order[j-1] = c.order[j-1], c.order[j]
		}
	}
	c.pos = growInt32(c.pos, c.gN)
	for i, u := range c.order {
		c.pos[u] = int32(i)
	}

	L := c.nLabels
	c.suffixHist = growInt32(c.suffixHist, (c.gN+1)*L)
	for l := 0; l < L; l++ {
		c.suffixHist[c.gN*L+l] = 0
	}
	for i := c.gN - 1; i >= 0; i-- {
		row, prev := c.suffixHist[i*L:(i+1)*L], c.suffixHist[(i+1)*L:(i+2)*L]
		copy(row, prev)
		row[c.gLab[c.order[i]]]++
	}
	c.suffixEdges = growInt32(c.suffixEdges, c.gN+1)
	c.suffixEdges[c.gN] = 0
	for i := c.gN - 1; i >= 0; i-- {
		c.suffixEdges[i] = c.suffixEdges[i+1]
		u := int(c.order[i])
		for _, v := range g.Neighbors(u) {
			if c.pos[v] > int32(i) {
				c.suffixEdges[i]++
			}
		}
	}

	c.hHist = growInt32(c.hHist, L)
	for l := range c.hHist {
		c.hHist[l] = 0
	}
	for x := 0; x < c.hN; x++ {
		c.hHist[c.hLab[x]]++
	}
	c.usedHist = growInt32(c.usedHist, L)
	for l := range c.usedHist {
		c.usedHist[l] = 0
	}
}

// run executes the beam search of width w over the prepared pair.
func (c *beamCtx) run(g, h *graph.Graph, w int) float64 {
	c.reset(g, h)

	// Initial state in arena slot A0.
	c.phiA = growInt32(c.phiA, c.gN)
	c.usedA = growUint64(c.usedA, c.hWords)
	s0 := beamState{remEdges: c.hM, phi: c.phiA[:c.gN], used: c.usedA[:c.hWords]}
	for i := range s0.phi {
		s0.phi[i] = notProcessed
	}
	for i := range s0.used {
		s0.used[i] = 0
	}
	if c.gN == 0 {
		// Terminal immediately: insert all of h.
		return float64(c.hN) + float64(c.hM)
	}
	s0.f = c.heuristicOf(0, &beamCand{remEdges: c.hM})
	c.frontier = append(c.frontier[:0], s0)

	for depth := 0; depth < c.gN; depth++ {
		u := int(c.order[depth])
		c.cands = c.cands[:0]
		for pi := range c.frontier {
			s := &c.frontier[pi]
			c.fillUsedHist(s)
			for x := 0; x < c.hN; x++ {
				if !isUsed(s.used, x) {
					c.addCand(depth, int32(pi), s, u, int32(x))
				}
			}
			c.addCand(depth, int32(pi), s, u, unmapped)
		}
		c.keepBest(w, u)
		c.frontier, c.next = c.next, c.frontier
		c.phiA, c.phiB = c.phiB, c.phiA
		c.usedA, c.usedB = c.usedB, c.usedA
	}

	best := c.frontier[0].cost
	for i := 1; i < len(c.frontier); i++ {
		if c.frontier[i].cost < best {
			best = c.frontier[i].cost
		}
	}
	return best
}

// fillUsedHist recomputes the used-h-label histogram of parent s into the
// scratch buffer.
func (c *beamCtx) fillUsedHist(s *beamState) {
	for l := 0; l < c.nLabels; l++ {
		c.usedHist[l] = 0
	}
	for u := 0; u < c.gN; u++ {
		if x := s.phi[u]; x >= 0 {
			c.usedHist[c.hLab[x]]++
		}
	}
}

// addCand appends the child of s that maps g node u to h node w (or
// deletes u when w == unmapped), computing its cost and f without
// materializing the child's mapping.
func (c *beamCtx) addCand(depth int, pi int32, s *beamState, u int, w int32) {
	cost := 0.0
	var usedNbr, unusedNbr int32
	if w == unmapped {
		cost = 1 // node deletion
		for _, j := range c.g.Neighbors(u) {
			if s.phi[j] != notProcessed {
				cost++ // incident edge to a processed node is deleted
			}
		}
	} else {
		if c.gLab[u] != c.hLab[w] {
			cost++ // relabel
		}
		matched := int32(0)
		for _, j := range c.g.Neighbors(u) {
			switch pj := s.phi[j]; {
			case pj == notProcessed:
				// decided later
			case pj == unmapped:
				cost++ // g edge to a deleted node: deletion
			case c.h.HasEdge(int(w), int(pj)):
				matched++
			default:
				cost++ // g edge with no h counterpart: deletion
			}
		}
		for _, x := range c.h.Neighbors(int(w)) {
			if isUsed(s.used, x) {
				usedNbr++
			} else {
				unusedNbr++
			}
		}
		// h edges from w to already-used nodes that are not matched by a g
		// edge must be inserted.
		cost += float64(usedNbr - matched)
	}

	nc := beamCand{
		cost: s.cost + cost, parent: pi, w: w,
		usedN: s.usedN, bothUsed: s.bothUsed, remEdges: s.remEdges,
	}
	if w >= 0 {
		nc.usedN++
		nc.bothUsed += usedNbr
		nc.remEdges -= unusedNbr
	}
	if depth+1 == c.gN {
		// Terminal: fold in the forced insertions so that f is exact.
		nc.cost += float64(int32(c.hN)-nc.usedN) + float64(c.hM-nc.bothUsed)
		nc.f = nc.cost
	} else if w >= 0 {
		// The child's used-label histogram is the parent's plus w's label.
		c.usedHist[c.hLab[w]]++
		nc.f = nc.cost + c.heuristicOf(depth+1, &nc)
		c.usedHist[c.hLab[w]]--
	} else {
		nc.f = nc.cost + c.heuristicOf(depth+1, &nc)
	}
	c.cands = append(c.cands, nc)
}

// heuristicOf is the admissible lower bound on the remaining edit cost of
// a candidate at the given depth: the label-multiset bound between
// unprocessed g nodes and unused h nodes plus the gap between the
// remaining-remaining edge counts on both sides. c.usedHist must hold the
// candidate's used-label histogram.
func (c *beamCtx) heuristicOf(depth int, nc *beamCand) float64 {
	common := int32(0)
	row := c.suffixHist[depth*c.nLabels : (depth+1)*c.nLabels]
	for l, sfx := range row {
		if rem := c.hHist[l] - c.usedHist[l]; rem < sfx {
			common += rem
		} else {
			common += sfx
		}
	}
	remG := int32(c.gN - depth)
	remH := int32(c.hN) - nc.usedN
	small, big := remG, remH
	if remH < remG {
		small, big = remH, remG
	}
	if common > small {
		common = small
	}
	lb := float64(big-small) + float64(small-common)

	eg, eh := c.suffixEdges[depth], nc.remEdges
	if eg > eh {
		lb += float64(eg - eh)
	} else {
		lb += float64(eh - eg)
	}
	return lb
}

// keepBest selects the top-w candidates under (f ascending, creation index
// ascending) — the deterministic refinement of the old full-sort-and-
// truncate — and materializes them, in that order, into the B arenas as
// the next frontier.
func (c *beamCtx) keepBest(w, u int) {
	// Max-heap of at most w candidate indices, worst on top: push each
	// candidate and evict the worst beyond capacity. O(C log w).
	c.heap = c.heap[:0]
	for i := range c.cands {
		c.heap = append(c.heap, int32(i))
		c.siftUp(len(c.heap) - 1)
		if len(c.heap) > w {
			c.popWorst()
		}
	}
	// Drain the heap back-to-front: popping the worst repeatedly yields
	// ascending (f, index) order.
	n := len(c.heap)
	sorted := c.heap
	for i := n - 1; i > 0; i-- {
		sorted[0], sorted[i] = sorted[i], sorted[0]
		c.heap = sorted[:i]
		c.siftDown(0)
	}
	c.heap = sorted

	c.phiB = growInt32(c.phiB, n*c.gN)
	c.usedB = growUint64(c.usedB, n*c.hWords)
	c.next = c.next[:0]
	for si, ci := range sorted {
		nc := &c.cands[ci]
		parent := &c.frontier[nc.parent]
		phi := c.phiB[si*c.gN : (si+1)*c.gN]
		copy(phi, parent.phi)
		used := c.usedB[si*c.hWords : (si+1)*c.hWords]
		copy(used, parent.used)
		phi[u] = nc.w
		if nc.w >= 0 {
			used[nc.w/64] |= 1 << (nc.w % 64)
		}
		c.next = append(c.next, beamState{
			cost: nc.cost, f: nc.f,
			usedN: nc.usedN, bothUsed: nc.bothUsed, remEdges: nc.remEdges,
			phi: phi, used: used,
		})
	}
}

// worse reports whether candidate a ranks strictly after candidate b under
// (f ascending, creation index ascending).
func (c *beamCtx) worse(a, b int32) bool {
	if cmp := order.Cmp(c.cands[a].f, c.cands[b].f); cmp != 0 {
		return cmp > 0
	}
	return a > b
}

func (c *beamCtx) siftUp(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !c.worse(c.heap[i], c.heap[p]) {
			return
		}
		c.heap[i], c.heap[p] = c.heap[p], c.heap[i]
		i = p
	}
}

func (c *beamCtx) siftDown(i int) {
	n := len(c.heap)
	for {
		l, r := 2*i+1, 2*i+2
		worst := i
		if l < n && c.worse(c.heap[l], c.heap[worst]) {
			worst = l
		}
		if r < n && c.worse(c.heap[r], c.heap[worst]) {
			worst = r
		}
		if worst == i {
			return
		}
		c.heap[i], c.heap[worst] = c.heap[worst], c.heap[i]
		i = worst
	}
}

// popWorst removes the heap root (the worst kept candidate).
func (c *beamCtx) popWorst() {
	n := len(c.heap) - 1
	c.heap[0] = c.heap[n]
	c.heap = c.heap[:n]
	c.siftDown(0)
}

// growInt32 returns s resized to n, reusing its backing array when the
// capacity suffices (contents are unspecified).
func growInt32(s []int32, n int) []int32 {
	if cap(s) < n {
		//lint:allow hotalloc amortized arena growth; zero allocations once the pooled arena reaches working size
		return make([]int32, n)
	}
	return s[:n]
}

// growUint64 is growInt32 for []uint64.
func growUint64(s []uint64, n int) []uint64 {
	if cap(s) < n {
		//lint:allow hotalloc amortized arena growth; zero allocations once the pooled arena reaches working size
		return make([]uint64, n)
	}
	return s[:n]
}
