package ged

import (
	"sort"

	"github.com/lansearch/lan/graph"
)

// beamSearch computes an upper bound of GED via beam search over the same
// state space as A*: at each depth only the w most promising partial
// mappings (by cost + admissible heuristic) are kept. This is the "Beam"
// algorithm of Neuhaus, Riesen and Bunke used in the paper's ground-truth
// protocol. Width w <= 0 defaults to 8.
func beamSearch(g, h *graph.Graph, w int) float64 {
	if w <= 0 {
		w = 8
	}
	if g.N() > h.N() {
		g, h = h, g
	}
	c := newSearchCtx(g, h)
	frontier := []*state{c.initial()}
	if g.N() == 0 {
		return frontier[0].cost
	}
	for depth := 0; depth < g.N(); depth++ {
		u := c.order[depth]
		var next []*state
		for _, s := range frontier {
			for x := 0; x < h.N(); x++ {
				if !isUsed(s.used, x) {
					next = append(next, c.child(s, u, x))
				}
			}
			next = append(next, c.child(s, u, unmapped))
		}
		sort.Slice(next, func(i, j int) bool { return next[i].f < next[j].f })
		if len(next) > w {
			next = next[:w]
		}
		frontier = next
	}
	best := frontier[0].cost
	for _, s := range frontier[1:] {
		if s.cost < best {
			best = s.cost
		}
	}
	return best
}
