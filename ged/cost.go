package ged

import "github.com/lansearch/lan/graph"

// unmapped marks a node of g that is deleted (mapped to no node of h).
const unmapped = -1

// mappingCost returns the exact edit cost induced by a full node mapping
// phi: phi[u] is the node of h that u in g maps to, or unmapped for a node
// deletion. Nodes of h that are not images are inserted. Edge edits are
// derived from the mapping: an edge of g survives iff both endpoints map to
// nodes of h joined by an edge; every other g edge is deleted and every h
// edge not covered this way is inserted. The result is an upper bound of
// the exact GED for any mapping and equals the GED for an optimal mapping.
func mappingCost(g, h *graph.Graph, phi []int) float64 {
	cost := 0.0
	used := make([]bool, h.N())
	for u := 0; u < g.N(); u++ {
		w := phi[u]
		if w == unmapped {
			cost++ // node deletion
			continue
		}
		used[w] = true
		if g.Label(u) != h.Label(w) {
			cost++ // relabel
		}
	}
	for w := 0; w < h.N(); w++ {
		if !used[w] {
			cost++ // node insertion
		}
	}
	// Edge deletions: g edges that do not survive.
	matched := 0
	for _, e := range g.Edges() {
		a, b := phi[e[0]], phi[e[1]]
		if a != unmapped && b != unmapped && h.HasEdge(a, b) {
			matched++
		} else {
			cost++ // edge deletion
		}
	}
	// Edge insertions: h edges not covered by surviving g edges.
	cost += float64(h.M() - matched)
	return cost
}

// labelLowerBound is an admissible GED lower bound from the node-label
// multisets and edge counts: relabeling can fix at most the overlapping
// labels; size differences force insertions/deletions; the edge-count gap
// forces at least that many edge edits.
func labelLowerBound(g, h *graph.Graph) float64 {
	lb := multisetEditLB(g.LabelHistogram(), h.LabelHistogram(), g.N(), h.N())
	eg, eh := g.M(), h.M()
	if eg > eh {
		lb += float64(eg - eh)
	} else {
		lb += float64(eh - eg)
	}
	return lb
}

// multisetEditLB lower-bounds node edit cost between two label multisets of
// sizes n1 and n2: the larger side must delete/insert |n1-n2| nodes and the
// remaining non-overlapping labels must be relabeled.
func multisetEditLB(h1, h2 map[string]int, n1, n2 int) float64 {
	common := 0
	for l, c1 := range h1 {
		if c2 := h2[l]; c2 < c1 {
			common += c2
		} else {
			common += c1
		}
	}
	small := n1
	if n2 < n1 {
		small = n2
	}
	big := n1 + n2 - small
	// |n1-n2| insertions/deletions plus relabels for the unmatched part of
	// the smaller side.
	return float64(big-small) + float64(small-minInt(common, small))
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
