package ged

import (
	"container/heap"

	"github.com/lansearch/lan/graph"
)

// notProcessed marks a g node whose mapping decision has not been made.
const notProcessed = -2

// searchCtx holds the static data shared by all A*/beam states for one
// (g, h) pair: the node processing order and the suffix statistics used by
// the admissible heuristic.
type searchCtx struct {
	g, h  *graph.Graph
	order []int // g nodes in processing order (degree descending)

	// suffixHist[i] is the label histogram of g nodes order[i:].
	suffixHist []map[string]int
	// suffixEdges[i] is the number of g edges with both endpoints at
	// order positions >= i.
	suffixEdges []int
	// pos[u] is the order position of g node u.
	pos []int

	hHist map[string]int
}

type state struct {
	depth int     // number of g nodes processed
	cost  float64 // g-value: edit cost accrued so far
	f     float64 // cost + heuristic
	phi   []int   // phi[u] for g node u: h node, unmapped, or notProcessed
	used  []uint64
}

func newSearchCtx(g, h *graph.Graph) *searchCtx {
	c := &searchCtx{g: g, h: h, hHist: h.LabelHistogram()}
	n := g.N()
	c.order = make([]int, n)
	for i := range c.order {
		c.order[i] = i
	}
	// Degree-descending order tightens the heuristic early.
	for i := 1; i < n; i++ {
		for j := i; j > 0 && g.Degree(c.order[j]) > g.Degree(c.order[j-1]); j-- {
			c.order[j], c.order[j-1] = c.order[j-1], c.order[j]
		}
	}
	c.pos = make([]int, n)
	for i, u := range c.order {
		c.pos[u] = i
	}
	c.suffixHist = make([]map[string]int, n+1)
	c.suffixHist[n] = map[string]int{}
	for i := n - 1; i >= 0; i-- {
		m := make(map[string]int, len(c.suffixHist[i+1])+1)
		for k, v := range c.suffixHist[i+1] {
			m[k] = v
		}
		m[g.Label(c.order[i])]++
		c.suffixHist[i] = m
	}
	c.suffixEdges = make([]int, n+1)
	for i := n - 1; i >= 0; i-- {
		c.suffixEdges[i] = c.suffixEdges[i+1]
		u := c.order[i]
		for _, v := range g.Neighbors(u) {
			if c.pos[v] > i {
				c.suffixEdges[i]++
			}
		}
	}
	return c
}

func (c *searchCtx) initial() *state {
	n := c.g.N()
	s := &state{
		phi:  make([]int, n),
		used: make([]uint64, (c.h.N()+63)/64),
	}
	for i := range s.phi {
		s.phi[i] = notProcessed
	}
	if n == 0 {
		s.cost = c.completionCost(s)
		s.f = s.cost
	} else {
		s.f = s.cost + c.heuristic(s)
	}
	return s
}

func isUsed(used []uint64, w int) bool { return used[w/64]&(1<<(w%64)) != 0 }

// heuristic is the admissible lower bound on the remaining edit cost: the
// label-multiset bound between unprocessed g nodes and unused h nodes plus
// the gap between remaining-remaining edge counts on both sides.
func (c *searchCtx) heuristic(s *state) float64 {
	remG := c.g.N() - s.depth
	// Unused h labels = full histogram minus used ones.
	usedHist := make(map[string]int)
	usedCount := 0
	for u := 0; u < c.g.N(); u++ {
		if w := s.phi[u]; w >= 0 {
			usedHist[c.h.Label(w)]++
			usedCount++
		}
	}
	remHHist := make(map[string]int, len(c.hHist))
	for l, n := range c.hHist {
		if r := n - usedHist[l]; r > 0 {
			remHHist[l] = r
		}
	}
	lb := multisetEditLB(c.suffixHist[s.depth], remHHist, remG, c.h.N()-usedCount)

	eg := c.suffixEdges[s.depth]
	eh := 0
	for _, e := range c.h.Edges() {
		if !isUsed(s.used, e[0]) && !isUsed(s.used, e[1]) {
			eh++
		}
	}
	if eg > eh {
		lb += float64(eg - eh)
	} else {
		lb += float64(eh - eg)
	}
	return lb
}

// assignCost returns the incremental edit cost of mapping g node u to h
// node w (w == unmapped for deletion), given the partial mapping in s.
func (c *searchCtx) assignCost(s *state, u, w int) float64 {
	if w == unmapped {
		cost := 1.0 // node deletion
		for _, j := range c.g.Neighbors(u) {
			if s.phi[j] != notProcessed {
				cost++ // incident edge to a processed node is deleted
			}
		}
		return cost
	}
	cost := 0.0
	if c.g.Label(u) != c.h.Label(w) {
		cost++ // relabel
	}
	matched := 0
	for _, j := range c.g.Neighbors(u) {
		switch pj := s.phi[j]; {
		case pj == notProcessed:
			// decided later
		case pj == unmapped:
			cost++ // g edge to a deleted node: deletion
		case c.h.HasEdge(w, pj):
			matched++
		default:
			cost++ // g edge with no h counterpart: deletion
		}
	}
	// h edges from w to already-used nodes that are not matched by a g
	// edge must be inserted.
	usedNbr := 0
	for _, x := range c.h.Neighbors(w) {
		if isUsed(s.used, x) {
			usedNbr++
		}
	}
	cost += float64(usedNbr - matched)
	return cost
}

// child returns the successor of s that maps g node u (= order[s.depth])
// to w (or deletes it when w == unmapped).
func (c *searchCtx) child(s *state, u, w int) *state {
	ns := &state{
		depth: s.depth + 1,
		cost:  s.cost + c.assignCost(s, u, w),
		phi:   append([]int(nil), s.phi...),
		used:  append([]uint64(nil), s.used...),
	}
	ns.phi[u] = w
	if w >= 0 {
		ns.used[w/64] |= 1 << (w % 64)
	}
	if ns.depth == c.g.N() {
		// Terminal: fold in the forced insertions so that f is exact and
		// popping the first terminal state is optimal.
		ns.cost += c.completionCost(ns)
		ns.f = ns.cost
	} else {
		ns.f = ns.cost + c.heuristic(ns)
	}
	return ns
}

// completionCost returns the cost of finishing a state where every g node
// has been processed: insert each unused h node and every h edge with at
// least one unused endpoint.
func (c *searchCtx) completionCost(s *state) float64 {
	cost := 0.0
	for w := 0; w < c.h.N(); w++ {
		if !isUsed(s.used, w) {
			cost++
		}
	}
	for _, e := range c.h.Edges() {
		if !isUsed(s.used, e[0]) || !isUsed(s.used, e[1]) {
			cost++
		}
	}
	return cost
}

type stateHeap []*state

func (h stateHeap) Len() int            { return len(h) }
func (h stateHeap) Less(i, j int) bool  { return h[i].f < h[j].f }
func (h stateHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *stateHeap) Push(x interface{}) { *h = append(*h, x.(*state)) }
func (h *stateHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return x
}

// astarWithMapping runs exact GED A*, returning the optimal mapping from
// g's nodes into h's. maxExpansions <= 0 means unbounded.
func astarWithMapping(g, h *graph.Graph, maxExpansions int) (float64, []int, bool) {
	swapped := g.N() > h.N()
	if swapped {
		g, h = h, g // unit costs make GED symmetric; branch over the bigger side
	}
	c := newSearchCtx(g, h)
	pq := &stateHeap{c.initial()}
	heap.Init(pq)
	expansions := 0
	for pq.Len() > 0 {
		s := heap.Pop(pq).(*state)
		if s.depth == g.N() {
			// Completion cost already folded in by child().
			phi := append([]int(nil), s.phi...)
			if swapped {
				phi = invertMapping(phi, h.N())
			}
			return s.cost, phi, true
		}
		expansions++
		if maxExpansions > 0 && expansions > maxExpansions {
			// Budget exhausted: return a cheap valid upper bound.
			return Hungarian(g, h), nil, false
		}
		u := c.order[s.depth]
		for w := 0; w < h.N(); w++ {
			if !isUsed(s.used, w) {
				heap.Push(pq, c.child(s, u, w))
			}
		}
		heap.Push(pq, c.child(s, u, unmapped))
	}
	return 0, nil, false // unreachable for well-formed inputs
}

// invertMapping converts a mapping smaller->bigger into bigger->smaller:
// nodes of the bigger graph that are not images become deletions.
func invertMapping(phi []int, n int) []int {
	inv := make([]int, n)
	for i := range inv {
		inv[i] = unmapped
	}
	for u, w := range phi {
		if w != unmapped {
			inv[w] = u
		}
	}
	return inv
}
