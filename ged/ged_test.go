package ged

import (
	"math"
	"testing"

	"github.com/lansearch/lan/graph"
)

func path(labels ...string) *graph.Graph {
	g := graph.New(-1)
	for _, l := range labels {
		g.AddNode(l)
	}
	for i := 1; i < len(labels); i++ {
		g.MustAddEdge(i-1, i)
	}
	return g
}

func cycle(labels ...string) *graph.Graph {
	g := path(labels...)
	if len(labels) > 2 {
		g.MustAddEdge(0, len(labels)-1)
	}
	return g
}

func exact(t *testing.T, g, h *graph.Graph) float64 {
	t.Helper()
	d, ok := Exact(g, h, 0)
	if !ok {
		t.Fatalf("unbounded exact GED did not finish")
	}
	return d
}

func TestExactIdentity(t *testing.T) {
	g := cycle("A", "B", "C", "D")
	if d := exact(t, g, g); d != 0 {
		t.Fatalf("d(G,G) = %v; want 0", d)
	}
}

func TestExactKnownSmallCases(t *testing.T) {
	cases := []struct {
		name string
		g, h *graph.Graph
		want float64
	}{
		{"relabel one node", path("A", "B", "C"), path("A", "B", "D"), 1},
		{"delete leaf node+edge", path("A", "B", "C"), path("A", "B"), 2},
		{"add cycle edge", path("A", "B", "C"), cycle("A", "B", "C"), 1},
		{"empty vs single node", graph.New(-1), path("A"), 1},
		{"both empty", graph.New(-1), graph.New(-1), 0},
		{"disjoint labels same shape", path("A", "A"), path("B", "B"), 2},
		{"path3 vs star3 relabeled", path("A", "B", "A"), cycle("A", "B", "A"), 1},
	}
	for _, c := range cases {
		if d := exact(t, c.g, c.h); d != c.want {
			t.Errorf("%s: d = %v; want %v", c.name, d, c.want)
		}
	}
}

func TestExactPaperExampleFig2(t *testing.T) {
	// Fig. 2: G has nodes v0(A), v1(B), v2(B), v3(B)... the paper states
	// d(G,Q) = 5 for its figure; we reconstruct a pair with the same
	// distance: G = star of A with three B leaves + triangle edges, Q =
	// path A-B with extra A. Rather than guess the exact figure topology,
	// assert symmetry and a hand-computed value on a fixed pair.
	g := graph.New(-1)
	a := g.AddNode("A")
	b1 := g.AddNode("B")
	b2 := g.AddNode("B")
	b3 := g.AddNode("B")
	g.MustAddEdge(a, b1)
	g.MustAddEdge(a, b2)
	g.MustAddEdge(a, b3)
	g.MustAddEdge(b1, b2)

	q := graph.New(-1)
	qa := q.AddNode("A")
	qb := q.AddNode("B")
	qa2 := q.AddNode("A")
	q.MustAddEdge(qa, qb)
	q.MustAddEdge(qb, qa2)

	d := exact(t, g, q)
	// Verify against an independently computed value: delete one B node
	// (+its 2 edges in the worst case)... we just require consistency with
	// brute-force mappingCost minimum.
	want := bruteForceGED(g, q)
	if d != want {
		t.Fatalf("A* = %v; brute force = %v", d, want)
	}
}

// bruteForceGED enumerates all injections of g's nodes into h plus
// deletions (exponential; n <= ~6).
func bruteForceGED(g, h *graph.Graph) float64 {
	phi := make([]int, g.N())
	used := make([]bool, h.N())
	best := math.Inf(1)
	var rec func(u int)
	rec = func(u int) {
		if u == g.N() {
			if c := mappingCost(g, h, phi); c < best {
				best = c
			}
			return
		}
		phi[u] = unmapped
		rec(u + 1)
		for w := 0; w < h.N(); w++ {
			if !used[w] {
				used[w] = true
				phi[u] = w
				rec(u + 1)
				used[w] = false
			}
		}
	}
	rec(0)
	return best
}

func TestExactMatchesBruteForceOnRandomPairs(t *testing.T) {
	gen := graph.NewGenerator(7)
	labels := []string{"A", "B", "C"}
	for trial := 0; trial < 30; trial++ {
		g := gen.RandomConnected(2+trial%4, 6, labels, 0.3)
		h := gen.RandomConnected(2+(trial+2)%4, 6, labels, 0.3)
		d := exact(t, g, h)
		want := bruteForceGED(g, h)
		if d != want {
			t.Fatalf("trial %d: A* = %v; brute force = %v", trial, d, want)
		}
	}
}

func TestExactSymmetric(t *testing.T) {
	gen := graph.NewGenerator(8)
	labels := []string{"A", "B", "C", "D"}
	for trial := 0; trial < 20; trial++ {
		g := gen.MoleculeLike(3+trial%5, 1, labels, 0.3)
		h := gen.MoleculeLike(3+(trial+1)%5, 1, labels, 0.3)
		if d1, d2 := exact(t, g, h), exact(t, h, g); d1 != d2 {
			t.Fatalf("trial %d: d(G,H)=%v != d(H,G)=%v", trial, d1, d2)
		}
	}
}

func TestExactTriangleInequality(t *testing.T) {
	gen := graph.NewGenerator(9)
	labels := []string{"A", "B"}
	for trial := 0; trial < 15; trial++ {
		a := gen.RandomConnected(3, 4, labels, 0.2)
		b := gen.RandomConnected(4, 5, labels, 0.2)
		c := gen.RandomConnected(3, 3, labels, 0.2)
		dab, dbc, dac := exact(t, a, b), exact(t, b, c), exact(t, a, c)
		if dac > dab+dbc+1e-9 {
			t.Fatalf("triangle violated: d(a,c)=%v > %v+%v", dac, dab, dbc)
		}
	}
}

func TestMutationBoundsExact(t *testing.T) {
	// d(G, Mutate(G, k)) <= ~2k (node insert/delete touches an edge too).
	gen := graph.NewGenerator(10)
	labels := []string{"A", "B", "C"}
	base := gen.MoleculeLike(7, 1, labels, 0.3)
	for k := 1; k <= 3; k++ {
		m := gen.Mutate(base, k, labels)
		if m.N() > 9 { // keep exact GED tractable
			continue
		}
		d := exact(t, base, m)
		if d > float64(2*k) {
			t.Fatalf("d(G, mutate(G,%d)) = %v > %d", k, d, 2*k)
		}
	}
}

func TestUpperBoundsDominateExact(t *testing.T) {
	gen := graph.NewGenerator(11)
	labels := []string{"A", "B", "C"}
	for trial := 0; trial < 25; trial++ {
		g := gen.RandomConnected(3+trial%4, 7, labels, 0.3)
		h := gen.RandomConnected(3+(trial+1)%4, 7, labels, 0.3)
		d := exact(t, g, h)
		for name, ub := range map[string]float64{
			"vj":        VJ(g, h),
			"hungarian": Hungarian(g, h),
			"beam":      Beam(g, h, 8),
		} {
			if ub < d-1e-9 {
				t.Fatalf("trial %d: %s = %v < exact %v", trial, name, ub, d)
			}
		}
	}
}

func TestBeamWiderIsNoWorse(t *testing.T) {
	gen := graph.NewGenerator(12)
	labels := []string{"A", "B", "C", "D"}
	for trial := 0; trial < 15; trial++ {
		g := gen.MoleculeLike(8, 1, labels, 0.3)
		h := gen.Mutate(g, 3, labels)
		if Beam(g, h, 32) > Beam(g, h, 1)+1e-9 {
			t.Fatalf("trial %d: wider beam got worse", trial)
		}
	}
}

func TestBeamLargeWidthMatchesExactOnSmall(t *testing.T) {
	gen := graph.NewGenerator(13)
	labels := []string{"A", "B"}
	for trial := 0; trial < 10; trial++ {
		g := gen.RandomConnected(4, 5, labels, 0.2)
		h := gen.RandomConnected(4, 5, labels, 0.2)
		d := exact(t, g, h)
		// With an exhaustive beam the search is complete.
		if b := Beam(g, h, 100000); b != d {
			t.Fatalf("trial %d: exhaustive beam %v != exact %v", trial, b, d)
		}
	}
}

func TestExactBudgetFallbackIsUpperBound(t *testing.T) {
	gen := graph.NewGenerator(14)
	labels := []string{"A", "B", "C", "D", "E"}
	g := gen.RandomConnected(14, 20, labels, 0.2)
	h := gen.RandomConnected(15, 22, labels, 0.2)
	d, ok := Exact(g, h, 10) // tiny budget: must not finish
	if ok {
		t.Skip("exact finished within tiny budget")
	}
	lb := labelLowerBound(g, h)
	if d < lb {
		t.Fatalf("fallback %v below lower bound %v", d, lb)
	}
}

func TestLabelLowerBoundAdmissible(t *testing.T) {
	gen := graph.NewGenerator(15)
	labels := []string{"A", "B", "C"}
	for trial := 0; trial < 25; trial++ {
		g := gen.RandomConnected(2+trial%4, 6, labels, 0.3)
		h := gen.RandomConnected(2+(trial+1)%4, 6, labels, 0.3)
		d := exact(t, g, h)
		if lb := labelLowerBound(g, h); lb > d+1e-9 {
			t.Fatalf("trial %d: lower bound %v > exact %v", trial, lb, d)
		}
	}
}

func TestEnsembleProtocol(t *testing.T) {
	gen := graph.NewGenerator(16)
	labels := []string{"A", "B", "C"}
	e := Ensemble{ExactBudget: 100000, BeamWidth: 8}
	for trial := 0; trial < 10; trial++ {
		g := gen.MoleculeLike(5, 1, labels, 0.3)
		h := gen.Mutate(g, 2, labels)
		d := e.Distance(g, h)
		want := exact(t, g, h)
		if d != want {
			t.Fatalf("trial %d: ensemble %v != exact %v (budget should suffice)", trial, d, want)
		}
	}
	// Zero budget: still returns a finite upper bound.
	e0 := Ensemble{}
	g := gen.MoleculeLike(10, 1, labels, 0.3)
	h := gen.MoleculeLike(12, 1, labels, 0.3)
	if d := e0.Distance(g, h); math.IsInf(d, 0) || d < 0 {
		t.Fatalf("no-exact ensemble distance = %v", d)
	}
}

func TestCounterCountsAndCaches(t *testing.T) {
	gen := graph.NewGenerator(17)
	labels := []string{"A", "B"}
	db := graph.NewDatabase([]*graph.Graph{
		gen.MoleculeLike(5, 0, labels, 0.2),
		gen.MoleculeLike(6, 0, labels, 0.2),
	})
	c := NewCounter(MetricFunc(func(g, h *graph.Graph) float64 { return VJ(g, h) }))
	d1 := c.Distance(db[0], db[1])
	if c.Calls() != 1 {
		t.Fatalf("calls = %d; want 1", c.Calls())
	}
	d2 := c.Distance(db[1], db[0]) // symmetric key: cache hit
	if c.Calls() != 1 {
		t.Fatalf("calls after cache hit = %d; want 1", c.Calls())
	}
	if d1 != d2 {
		t.Fatalf("cached distance differs: %v vs %v", d1, d2)
	}
	// Free-standing graphs (ID -1) are not cached.
	q := gen.MoleculeLike(5, 0, labels, 0.2)
	c.Distance(q, db[0])
	c.Distance(q, db[0])
	if c.Calls() != 3 {
		t.Fatalf("calls = %d; want 3 (query not cacheable)", c.Calls())
	}
	c.Reset()
	if c.Calls() != 0 {
		t.Fatalf("calls after reset = %d", c.Calls())
	}
}

func TestMappingCostIdentityMapping(t *testing.T) {
	g := cycle("A", "B", "C", "D")
	phi := []int{0, 1, 2, 3}
	if c := mappingCost(g, g, phi); c != 0 {
		t.Fatalf("identity mapping cost = %v", c)
	}
	// Mapping everything to deletion costs n + m (delete all) + n' + m'
	// (insert all of h).
	all := []int{unmapped, unmapped, unmapped, unmapped}
	want := float64(g.N() + g.M() + g.N() + g.M())
	if c := mappingCost(g, g, all); c != want {
		t.Fatalf("all-delete mapping cost = %v; want %v", c, want)
	}
}

func TestExactMappingCostConsistency(t *testing.T) {
	gen := graph.NewGenerator(31)
	labels := []string{"A", "B", "C"}
	for trial := 0; trial < 20; trial++ {
		g := gen.RandomConnected(2+trial%4, 6, labels, 0.3)
		h := gen.RandomConnected(2+(trial+1)%5, 7, labels, 0.3)
		phi, d, ok := ExactMapping(g, h, 0)
		if !ok {
			t.Fatalf("trial %d: unbounded search failed", trial)
		}
		if len(phi) != g.N() {
			t.Fatalf("trial %d: mapping length %d; want %d", trial, len(phi), g.N())
		}
		got, err := MappingCost(g, h, phi)
		if err != nil {
			t.Fatalf("trial %d: MappingCost: %v", trial, err)
		}
		if got != d {
			t.Fatalf("trial %d: mapping cost %v != exact %v", trial, got, d)
		}
		want := exact(t, g, h)
		if d != want {
			t.Fatalf("trial %d: ExactMapping distance %v != Exact %v", trial, d, want)
		}
	}
}

func TestExactMappingSwappedOrientation(t *testing.T) {
	// g bigger than h triggers the internal swap; the mapping must still
	// be from g's nodes.
	g := path("A", "B", "C", "D", "E")
	h := path("A", "B")
	phi, d, ok := ExactMapping(g, h, 0)
	if !ok || len(phi) != 5 {
		t.Fatalf("phi = %v ok = %v", phi, ok)
	}
	got, err := MappingCost(g, h, phi)
	if err != nil {
		t.Fatalf("MappingCost: %v", err)
	}
	if got != d {
		t.Fatalf("mapping cost %v != %v", got, d)
	}
}

func TestMappingCostRejectsInvalidMappings(t *testing.T) {
	g := path("A", "B")
	h := path("A", "B")
	if _, err := MappingCost(g, h, []int{0, 0}); err == nil {
		t.Fatal("no error for non-injective mapping")
	}
	if _, err := MappingCost(g, h, []int{0}); err == nil {
		t.Fatal("no error for short mapping")
	}
	if _, err := MappingCost(g, h, []int{0, 7}); err == nil {
		t.Fatal("no error for out-of-range target")
	}
	if got, err := MappingCost(g, h, []int{0, 1}); err != nil || got != 0 {
		t.Fatalf("identity mapping: cost %v, err %v", got, err)
	}
}

func TestLowerBoundPublicAPI(t *testing.T) {
	g := path("A", "B", "C")
	h := path("A", "B", "D")
	lb := LowerBound(g, h)
	d := exact(t, g, h)
	if lb > d {
		t.Fatalf("LowerBound %v > exact %v", lb, d)
	}
	if lb <= 0 {
		t.Fatalf("expected positive bound, got %v", lb)
	}
}
