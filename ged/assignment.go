package ged

import "math"

// infCost marks an infeasible assignment cell.
const infCost = 1e9

// solveHungarian solves the square min-cost assignment problem with the
// O(n^3) potentials formulation of the Hungarian algorithm (Kuhn–Munkres).
// cost must be square; the result maps each row to its assigned column.
func solveHungarian(cost [][]float64) []int {
	n := len(cost)
	if n == 0 {
		return nil
	}
	// 1-indexed potentials formulation.
	u := make([]float64, n+1)
	v := make([]float64, n+1)
	p := make([]int, n+1)   // p[j]: row matched to column j (0 = none)
	way := make([]int, n+1) // way[j]: previous column on the alternating path
	for i := 1; i <= n; i++ {
		p[0] = i
		j0 := 0
		minv := make([]float64, n+1)
		used := make([]bool, n+1)
		for j := range minv {
			minv[j] = math.Inf(1)
		}
		for {
			used[j0] = true
			i0 := p[j0]
			delta := math.Inf(1)
			j1 := 0
			for j := 1; j <= n; j++ {
				if used[j] {
					continue
				}
				cur := cost[i0-1][j-1] - u[i0] - v[j]
				if cur < minv[j] {
					minv[j] = cur
					way[j] = j0
				}
				if minv[j] < delta {
					delta = minv[j]
					j1 = j
				}
			}
			for j := 0; j <= n; j++ {
				if used[j] {
					u[p[j]] += delta
					v[j] -= delta
				} else {
					minv[j] -= delta
				}
			}
			j0 = j1
			if p[j0] == 0 {
				break
			}
		}
		for j0 != 0 {
			j1 := way[j0]
			p[j0] = p[j1]
			j0 = j1
		}
	}
	assign := make([]int, n)
	for j := 1; j <= n; j++ {
		if p[j] > 0 {
			assign[p[j]-1] = j - 1
		}
	}
	return assign
}

// solveJV solves the square min-cost assignment problem with the
// Jonker–Volgenant algorithm: column reduction, augmenting row reduction,
// then shortest augmenting paths for the remaining free rows.
func solveJV(cost [][]float64) []int {
	n := len(cost)
	if n == 0 {
		return nil
	}
	rowsol := make([]int, n) // rowsol[i]: column assigned to row i
	colsol := make([]int, n) // colsol[j]: row assigned to column j
	v := make([]float64, n)  // column potentials
	for i := range rowsol {
		rowsol[i] = -1
		colsol[i] = -1
	}

	// Column reduction: assign each column to its minimal row when free.
	for j := n - 1; j >= 0; j-- {
		imin := 0
		for i := 1; i < n; i++ {
			if cost[i][j] < cost[imin][j] {
				imin = i
			}
		}
		v[j] = cost[imin][j]
		if rowsol[imin] == -1 {
			rowsol[imin] = j
			colsol[j] = imin
		}
	}

	// Augmenting row reduction (two passes) for unassigned rows, following
	// the original LAP formulation: take the best column, adjusting its
	// potential by the gap to the second-best; a bumped row is retried
	// immediately when the potential strictly decreased, otherwise it is
	// deferred to the next pass.
	free := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if rowsol[i] == -1 {
			free = append(free, i)
		}
	}
	// retryBudget caps the immediate-retry ping-pong, which can fail to
	// make progress under floating-point ties; rows beyond the budget are
	// deferred to the exact augmentation phase below, which is correct for
	// any dual-feasible warm start.
	retryBudget := 20*n + 100
	for pass := 0; pass < 2; pass++ {
		k := 0
		prevLen := len(free)
		next := make([]int, 0, prevLen)
		for k < prevLen {
			i := free[k]
			k++
			// Two smallest reduced costs in row i.
			j1, j2 := -1, -1
			u1, u2 := math.Inf(1), math.Inf(1)
			for j := 0; j < n; j++ {
				r := cost[i][j] - v[j]
				if r < u1 {
					u2, j2 = u1, j1
					u1, j1 = r, j
				} else if r < u2 {
					u2, j2 = r, j
				}
			}
			i0 := colsol[j1]
			if u1 < u2 {
				v[j1] -= u2 - u1
			} else if i0 >= 0 && j2 >= 0 {
				j1 = j2
				i0 = colsol[j1]
			}
			rowsol[i] = j1
			colsol[j1] = i
			if i0 >= 0 {
				rowsol[i0] = -1
				if u1 < u2 && retryBudget > 0 {
					// Strict potential decrease: retry the bumped row now.
					retryBudget--
					k--
					free[k] = i0
				} else {
					next = append(next, i0)
				}
			}
		}
		free = next
	}

	// Shortest augmenting path for each remaining free row (Dijkstra on
	// reduced costs).
	for _, f := range free {
		d := make([]float64, n)
		pred := make([]int, n)
		done := make([]bool, n)
		for j := 0; j < n; j++ {
			d[j] = cost[f][j] - v[j]
			pred[j] = f
		}
		endj := -1
		var mu float64
		for {
			// Pick the unscanned column with minimal d.
			jmin := -1
			for j := 0; j < n; j++ {
				if !done[j] && (jmin == -1 || d[j] < d[jmin]) {
					jmin = j
				}
			}
			done[jmin] = true
			mu = d[jmin]
			if colsol[jmin] == -1 {
				endj = jmin
				break
			}
			// Relax through the row currently owning jmin.
			i := colsol[jmin]
			for j := 0; j < n; j++ {
				if done[j] {
					continue
				}
				if nd := mu + cost[i][j] - v[j] - (cost[i][jmin] - v[jmin]); nd < d[j] {
					d[j] = nd
					pred[j] = i
				}
			}
		}
		// Update potentials for scanned columns.
		for j := 0; j < n; j++ {
			if done[j] {
				v[j] += d[j] - mu
			}
		}
		// Augment along the path.
		for {
			i := pred[endj]
			colsol[endj] = i
			endj, rowsol[i] = rowsol[i], endj
			if i == f {
				break
			}
		}
	}
	return rowsol
}

// assignmentCost sums the matrix cost of an assignment (for tests).
func assignmentCost(cost [][]float64, assign []int) float64 {
	total := 0.0
	for i, j := range assign {
		total += cost[i][j]
	}
	return total
}
