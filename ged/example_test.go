package ged_test

import (
	"fmt"

	"github.com/lansearch/lan/ged"
	"github.com/lansearch/lan/graph"
)

func ExampleExact() {
	// Two small molecules: C-N-C and C-N-O.
	g := graph.New(-1)
	g.AddNode("C")
	g.AddNode("N")
	g.AddNode("C")
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)

	h := graph.New(-1)
	h.AddNode("C")
	h.AddNode("N")
	h.AddNode("O")
	h.MustAddEdge(0, 1)
	h.MustAddEdge(1, 2)

	d, ok := ged.Exact(g, h, 0)
	fmt.Println(d, ok)
	// Output: 1 true
}

func ExampleExactMapping() {
	g := graph.New(-1)
	g.AddNode("A")
	g.AddNode("B")
	g.MustAddEdge(0, 1)

	h := graph.New(-1)
	h.AddNode("B") // the B nodes should align
	h.AddNode("A")
	h.MustAddEdge(0, 1)

	phi, d, _ := ged.ExactMapping(g, h, 0)
	fmt.Println(phi, d)
	// Output: [1 0] 0
}

func ExampleEnsemble() {
	gen := graph.NewGenerator(1)
	labels := []string{"C", "N", "O"}
	g := gen.MoleculeLike(12, 1, labels, 0.3)
	h := gen.Mutate(g, 2, labels)

	// The paper's ground-truth protocol: exact GED within a budget, else
	// the best of three approximations.
	metric := ged.Ensemble{ExactBudget: 1000, BeamWidth: 8}
	d := metric.Distance(g, h)
	fmt.Println(d > 0, d <= 4) // two edits cost at most 4 (node ops touch edges)
	// Output: true true
}

func ExampleCounter() {
	gen := graph.NewGenerator(2)
	db := graph.NewDatabase([]*graph.Graph{
		gen.MoleculeLike(8, 1, []string{"C", "N"}, 0.3),
		gen.MoleculeLike(9, 1, []string{"C", "N"}, 0.3),
	})
	counter := ged.NewCounter(ged.MetricFunc(ged.Hungarian))
	counter.Distance(db[0], db[1])
	counter.Distance(db[1], db[0]) // symmetric: served from cache
	fmt.Println(counter.Calls())
	// Output: 1
}
