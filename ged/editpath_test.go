package ged

import (
	"testing"

	"github.com/lansearch/lan/graph"
)

func TestEditPathRoundTripRandomPairs(t *testing.T) {
	gen := graph.NewGenerator(51)
	labels := []string{"A", "B", "C"}
	for trial := 0; trial < 25; trial++ {
		g := gen.RandomConnected(2+trial%4, 6, labels, 0.3)
		h := gen.RandomConnected(2+(trial+2)%5, 7, labels, 0.3)
		phi, d, ok := ExactMapping(g, h, 0)
		if !ok {
			t.Fatalf("trial %d: exact search failed", trial)
		}
		ops, err := EditPath(g, h, phi)
		if err != nil {
			t.Fatalf("trial %d: EditPath: %v", trial, err)
		}
		// The script's length is exactly the edit cost of the mapping —
		// with an optimal mapping, a minimum edit script.
		if float64(len(ops)) != d {
			t.Fatalf("trial %d: %d ops for GED %v\nops: %v", trial, len(ops), d, ops)
		}
		got, err := Apply(g, ops)
		if err != nil {
			t.Fatalf("trial %d: Apply: %v\nops: %v", trial, err, ops)
		}
		if graph.Hash(got, 3) != graph.Hash(h, 3) {
			t.Fatalf("trial %d: edit path does not reach h", trial)
		}
	}
}

func TestEditPathIdentity(t *testing.T) {
	g := path("A", "B", "C")
	phi, _, _ := ExactMapping(g, g, 0)
	ops, err := EditPath(g, g, phi)
	if err != nil {
		t.Fatalf("EditPath: %v", err)
	}
	if len(ops) != 0 {
		t.Fatalf("identity edit path = %v", ops)
	}
}

func TestEditPathWithMutations(t *testing.T) {
	gen := graph.NewGenerator(52)
	labels := []string{"A", "B", "C", "D"}
	base := gen.MoleculeLike(7, 1, labels, 0.3)
	for k := 1; k <= 3; k++ {
		m := gen.Mutate(base, k, labels)
		if m.N() > 9 {
			continue
		}
		phi, d, ok := ExactMapping(base, m, 0)
		if !ok {
			t.Fatal("exact failed")
		}
		ops, err := EditPath(base, m, phi)
		if err != nil {
			t.Fatalf("k=%d: EditPath: %v", k, err)
		}
		if float64(len(ops)) != d {
			t.Fatalf("k=%d: %d ops for GED %v", k, len(ops), d)
		}
		got, err := Apply(base, ops)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if graph.Hash(got, 3) != graph.Hash(m, 3) {
			t.Fatalf("k=%d: wrong target", k)
		}
	}
}

func TestApplyRejectsInvalidScripts(t *testing.T) {
	g := path("A", "B")
	cases := []struct {
		name string
		ops  []EditOp
	}{
		{"absent edge", []EditOp{{Kind: DeleteEdge, U: 0, V: 0}}},
		{"non-isolated delete", []EditOp{{Kind: DeleteNode, U: 0}}},
		{"bad relabel target", []EditOp{{Kind: Relabel, U: 9, Label: "X"}}},
		{"bad insert id", []EditOp{{Kind: InsertNode, U: 7, Label: "X"}}},
		{"duplicate edge", []EditOp{{Kind: InsertEdge, U: 0, V: 1}}},
		{"self-loop", []EditOp{{Kind: InsertEdge, U: 0, V: 0}}},
		{"unknown kind", []EditOp{{Kind: EditKind(99)}}},
	}
	for _, c := range cases {
		if _, err := Apply(g, c.ops); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestEditKindString(t *testing.T) {
	for k, want := range map[EditKind]string{
		DeleteEdge: "delete-edge",
		DeleteNode: "delete-node",
		Relabel:    "relabel",
		InsertNode: "insert-node",
		InsertEdge: "insert-edge",
	} {
		if k.String() != want {
			t.Errorf("%d.String() = %q", int(k), k.String())
		}
	}
}

func TestEditPathRejectsBadMapping(t *testing.T) {
	if _, err := EditPath(path("A", "B"), path("A"), []int{0}); err == nil {
		t.Fatal("no error for a mapping shorter than g")
	}
}
