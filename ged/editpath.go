package ged

import (
	"fmt"
	"sort"

	"github.com/lansearch/lan/graph"
)

// EditOp is one edit operation of an edit path. Node ids refer to the
// source graph G as the path executes: operations are emitted in an order
// that is valid to apply sequentially (edge deletions, node deletions,
// relabelings, node insertions, edge insertions), and inserted nodes
// receive the next free ids of the evolving graph.
type EditOp struct {
	Kind EditKind
	// U, V are node ids; V is used by edge operations only.
	U, V int
	// Label is the new label for relabelings and insertions.
	Label string
}

// EditKind enumerates the five GED edit operations (Sec. III-A).
type EditKind int

// The five edit operations.
const (
	// DeleteEdge removes edge {U, V}.
	DeleteEdge EditKind = iota
	// DeleteNode removes node U (which must be isolated by then).
	DeleteNode
	// Relabel sets node U's label to Label.
	Relabel
	// InsertNode appends a node with Label (its id is U).
	InsertNode
	// InsertEdge adds edge {U, V}.
	InsertEdge
)

// String implements fmt.Stringer.
func (k EditKind) String() string {
	switch k {
	case DeleteEdge:
		return "delete-edge"
	case DeleteNode:
		return "delete-node"
	case Relabel:
		return "relabel"
	case InsertNode:
		return "insert-node"
	case InsertEdge:
		return "insert-edge"
	default:
		return fmt.Sprintf("EditKind(%d)", int(k))
	}
}

// EditPath derives an explicit edit script from a node mapping phi (as
// returned by ExactMapping): applying the script to g yields a graph
// isomorphic to h, and its length equals MappingCost(g, h, phi) — so with
// an optimal mapping it is a minimum edit script. The script is returned
// in apply order. It returns an error when phi's length does not match
// g's node count.
func EditPath(g, h *graph.Graph, phi []int) ([]EditOp, error) {
	if len(phi) != g.N() {
		return nil, fmt.Errorf("ged: EditPath: mapping of length %d for %d nodes", len(phi), g.N())
	}
	var ops []EditOp

	// 1. Delete g edges that do not survive the mapping.
	for _, e := range g.Edges() {
		a, b := phi[e[0]], phi[e[1]]
		if a == unmapped || b == unmapped || !h.HasEdge(a, b) {
			ops = append(ops, EditOp{Kind: DeleteEdge, U: e[0], V: e[1]})
		}
	}

	// 2. Delete unmapped g nodes (descending id so ids of remaining
	// deletions stay valid under swap-with-last renumbering schemes; we
	// use stable compaction semantics below instead, so descending order
	// just keeps the script readable).
	var deletions []int
	for u, w := range phi {
		if w == unmapped {
			deletions = append(deletions, u)
		}
	}
	sort.Sort(sort.Reverse(sort.IntSlice(deletions)))
	for _, u := range deletions {
		ops = append(ops, EditOp{Kind: DeleteNode, U: u})
	}

	// Track the id each surviving g node has after compaction (deleting
	// node u shifts every id > u down by one).
	shifted := make([]int, g.N())
	for u := range shifted {
		shifted[u] = u
		for _, d := range deletions {
			if u == d {
				shifted[u] = -1
				break
			}
			if u > d {
				shifted[u]--
			}
		}
	}

	// 3. Relabel surviving nodes whose labels differ from their images.
	for u, w := range phi {
		if w != unmapped && g.Label(u) != h.Label(w) {
			ops = append(ops, EditOp{Kind: Relabel, U: shifted[u], Label: h.Label(w)})
		}
	}

	// 4. Insert h nodes that are not images; their new ids continue after
	// the survivors.
	used := make([]bool, h.N())
	for _, w := range phi {
		if w != unmapped {
			used[w] = true
		}
	}
	survivors := g.N() - len(deletions)
	newID := make([]int, h.N()) // id of h node w in the evolving graph
	for u, w := range phi {
		if w != unmapped {
			newID[w] = shifted[u]
		}
	}
	next := survivors
	for w := 0; w < h.N(); w++ {
		if !used[w] {
			newID[w] = next
			ops = append(ops, EditOp{Kind: InsertNode, U: next, Label: h.Label(w)})
			next++
		}
	}

	// 5. Insert h edges that are not images of surviving g edges.
	for _, e := range h.Edges() {
		covered := false
		if used[e[0]] && used[e[1]] {
			// The edge survives iff its preimages were adjacent in g.
			var pu, pv int = -1, -1
			for u, w := range phi {
				if w == e[0] {
					pu = u
				}
				if w == e[1] {
					pv = u
				}
			}
			covered = pu >= 0 && pv >= 0 && g.HasEdge(pu, pv)
		}
		if !covered {
			ops = append(ops, EditOp{Kind: InsertEdge, U: newID[e[0]], V: newID[e[1]]})
		}
	}
	return ops, nil
}

// Apply executes an edit script on a copy of g and returns the result.
// It errors if the script is invalid for the graph (unknown nodes,
// duplicate edges, deleting a non-isolated node).
func Apply(g *graph.Graph, ops []EditOp) (*graph.Graph, error) {
	type edge struct{ u, v int }
	labels := g.Labels()
	edges := make(map[edge]bool)
	for _, e := range g.Edges() {
		edges[edge{e[0], e[1]}] = true
	}
	hasEdge := func(u, v int) bool {
		if u > v {
			u, v = v, u
		}
		return edges[edge{u, v}]
	}
	setEdge := func(u, v int, present bool) {
		if u > v {
			u, v = v, u
		}
		if present {
			edges[edge{u, v}] = true
		} else {
			delete(edges, edge{u, v})
		}
	}

	for i, op := range ops {
		switch op.Kind {
		case DeleteEdge:
			if !hasEdge(op.U, op.V) {
				return nil, fmt.Errorf("ged: op %d: edge {%d,%d} absent", i, op.U, op.V)
			}
			setEdge(op.U, op.V, false)
		case DeleteNode:
			if op.U < 0 || op.U >= len(labels) {
				return nil, fmt.Errorf("ged: op %d: node %d out of range", i, op.U)
			}
			for e := range edges {
				if e.u == op.U || e.v == op.U {
					return nil, fmt.Errorf("ged: op %d: node %d not isolated", i, op.U)
				}
			}
			// Compact: shift ids above op.U down by one.
			labels = append(labels[:op.U], labels[op.U+1:]...)
			shifted := make(map[edge]bool, len(edges))
			for e := range edges {
				u, v := e.u, e.v
				if u > op.U {
					u--
				}
				if v > op.U {
					v--
				}
				shifted[edge{u, v}] = true
			}
			edges = shifted
		case Relabel:
			if op.U < 0 || op.U >= len(labels) {
				return nil, fmt.Errorf("ged: op %d: node %d out of range", i, op.U)
			}
			labels[op.U] = op.Label
		case InsertNode:
			if op.U != len(labels) {
				return nil, fmt.Errorf("ged: op %d: insert id %d; want %d", i, op.U, len(labels))
			}
			labels = append(labels, op.Label)
		case InsertEdge:
			if op.U < 0 || op.U >= len(labels) || op.V < 0 || op.V >= len(labels) || op.U == op.V {
				return nil, fmt.Errorf("ged: op %d: bad edge {%d,%d}", i, op.U, op.V)
			}
			if hasEdge(op.U, op.V) {
				return nil, fmt.Errorf("ged: op %d: edge {%d,%d} already present", i, op.U, op.V)
			}
			setEdge(op.U, op.V, true)
		default:
			return nil, fmt.Errorf("ged: op %d: unknown kind %v", i, op.Kind)
		}
	}

	out := graph.New(-1)
	for _, l := range labels {
		out.AddNode(l)
	}
	for e := range edges {
		if err := out.AddEdge(e.u, e.v); err != nil {
			return nil, err
		}
	}
	return out, nil
}
