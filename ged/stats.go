package ged

import "sync/atomic"

// beamArenaGets counts beam-kernel invocations that drew an arena from
// the pool; beamArenaNews counts the subset where the pool was empty and
// a fresh arena had to be allocated. Their difference is the reuse count
// — the quantity the zero-alloc steady-state claim rests on.
var (
	beamArenaGets atomic.Uint64
	beamArenaNews atomic.Uint64
)

// BeamKernelStats reports the beam kernel's arena-pool behaviour since
// process start: how many invocations reused a pooled arena and how many
// had to allocate one. Safe for concurrent use; values are monotonic.
func BeamKernelStats() (reused, allocated uint64) {
	gets := beamArenaGets.Load()
	news := beamArenaNews.Load()
	if gets < news {
		// A Get that triggered New may have bumped news before gets lands;
		// clamp the transient.
		gets = news
	}
	return gets - news, news
}
