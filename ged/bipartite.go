package ged

import "github.com/lansearch/lan/graph"

// The bipartite heuristics reduce GED to a square (n1+n2)x(n1+n2)
// assignment problem in the style of Riesen & Bunke: the top-left block
// holds substitution costs, the top-right diagonal deletion costs, the
// bottom-left diagonal insertion costs and the bottom-right block zeros.
// Solving the assignment yields a node mapping whose induced edit cost
// (mappingCost) is an upper bound of the exact GED.

// riesenBunkeCosts builds the Riesen–Bunke cost matrix: substitution cost
// is the label cost plus half the incident-edge count difference (each
// unmatched incident edge is shared by two nodes); deletions/insertions
// charge the node plus half its incident edges.
func riesenBunkeCosts(g, h *graph.Graph) [][]float64 {
	n1, n2 := g.N(), h.N()
	n := n1 + n2
	m := newSquare(n)
	for i := 0; i < n1; i++ {
		for j := 0; j < n2; j++ {
			c := 0.0
			if g.Label(i) != h.Label(j) {
				c = 1
			}
			dd := g.Degree(i) - h.Degree(j)
			if dd < 0 {
				dd = -dd
			}
			m[i][j] = c + float64(dd)/2
		}
	}
	for i := 0; i < n1; i++ {
		for j := 0; j < n1; j++ {
			if i == j {
				m[i][n2+j] = 1 + float64(g.Degree(i))/2
			} else {
				m[i][n2+j] = infCost
			}
		}
	}
	for i := 0; i < n2; i++ {
		for j := 0; j < n2; j++ {
			if i == j {
				m[n1+i][j] = 1 + float64(h.Degree(i))/2
			} else {
				m[n1+i][j] = infCost
			}
		}
	}
	// Bottom-right block stays zero.
	return m
}

// labelCosts builds the plain label-substitution cost matrix used by the
// VJ baseline (no structural term).
func labelCosts(g, h *graph.Graph) [][]float64 {
	n1, n2 := g.N(), h.N()
	n := n1 + n2
	m := newSquare(n)
	for i := 0; i < n1; i++ {
		for j := 0; j < n2; j++ {
			if g.Label(i) != h.Label(j) {
				m[i][j] = 1
			}
		}
	}
	for i := 0; i < n1; i++ {
		for j := 0; j < n1; j++ {
			if i == j {
				m[i][n2+j] = 1
			} else {
				m[i][n2+j] = infCost
			}
		}
	}
	for i := 0; i < n2; i++ {
		for j := 0; j < n2; j++ {
			if i == j {
				m[n1+i][j] = 1
			} else {
				m[n1+i][j] = infCost
			}
		}
	}
	return m
}

func newSquare(n int) [][]float64 {
	m := make([][]float64, n)
	backing := make([]float64, n*n)
	for i := range m {
		m[i] = backing[i*n : (i+1)*n]
	}
	return m
}

// extractMapping converts an assignment over the padded square matrix into
// a node mapping phi for g: rows < n1 assigned to columns < n2 are
// substitutions; rows assigned to padding columns are deletions.
func extractMapping(assign []int, n1, n2 int) []int {
	phi := make([]int, n1)
	for i := 0; i < n1; i++ {
		if assign[i] < n2 {
			phi[i] = assign[i]
		} else {
			phi[i] = unmapped
		}
	}
	return phi
}
