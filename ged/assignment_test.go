package ged

import (
	"math"
	"math/rand"
	"testing"
)

// bruteForceAssignment finds the optimal assignment cost by enumerating all
// permutations (n <= 8).
func bruteForceAssignment(cost [][]float64) float64 {
	n := len(cost)
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	best := math.Inf(1)
	var rec func(i int)
	rec = func(i int) {
		if i == n {
			total := 0.0
			for r, c := range perm {
				total += cost[r][c]
			}
			if total < best {
				best = total
			}
			return
		}
		for j := i; j < n; j++ {
			perm[i], perm[j] = perm[j], perm[i]
			rec(i + 1)
			perm[i], perm[j] = perm[j], perm[i]
		}
	}
	rec(0)
	return best
}

func randomCostMatrix(rng *rand.Rand, n int) [][]float64 {
	m := newSquare(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			m[i][j] = math.Floor(rng.Float64()*100) / 10
		}
	}
	return m
}

func TestHungarianMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(7)
		m := randomCostMatrix(rng, n)
		got := assignmentCost(m, solveHungarian(m))
		want := bruteForceAssignment(m)
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("trial %d (n=%d): hungarian cost %v; want %v", trial, n, got, want)
		}
	}
}

func TestJVMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(7)
		m := randomCostMatrix(rng, n)
		got := assignmentCost(m, solveJV(m))
		want := bruteForceAssignment(m)
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("trial %d (n=%d): JV cost %v; want %v", trial, n, got, want)
		}
	}
}

func TestSolversAgreeOnLargerMatrices(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 30; trial++ {
		n := 10 + rng.Intn(30)
		m := randomCostMatrix(rng, n)
		h := assignmentCost(m, solveHungarian(m))
		jv := assignmentCost(m, solveJV(m))
		if math.Abs(h-jv) > 1e-6 {
			t.Fatalf("trial %d (n=%d): hungarian %v != JV %v", trial, n, h, jv)
		}
	}
}

func TestAssignmentIsPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(20)
		m := randomCostMatrix(rng, n)
		for name, solve := range map[string]func([][]float64) []int{
			"hungarian": solveHungarian,
			"jv":        solveJV,
		} {
			a := solve(m)
			seen := make([]bool, n)
			for _, j := range a {
				if j < 0 || j >= n || seen[j] {
					t.Fatalf("%s: not a permutation: %v", name, a)
				}
				seen[j] = true
			}
		}
	}
}

func TestAssignmentEmptyMatrix(t *testing.T) {
	if got := solveHungarian(nil); got != nil {
		t.Fatalf("hungarian(nil) = %v", got)
	}
	if got := solveJV(nil); got != nil {
		t.Fatalf("jv(nil) = %v", got)
	}
}

func TestAssignmentWithInfeasibleCells(t *testing.T) {
	// Diagonal forbidden: the optimum must avoid infCost cells.
	n := 5
	m := newSquare(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				m[i][j] = infCost
			} else {
				m[i][j] = float64(i + j)
			}
		}
	}
	for name, solve := range map[string]func([][]float64) []int{
		"hungarian": solveHungarian,
		"jv":        solveJV,
	} {
		a := solve(m)
		for i, j := range a {
			if i == j {
				t.Fatalf("%s picked an infeasible cell: %v", name, a)
			}
		}
	}
}
