// Package ged computes graph edit distance (GED) between labeled undirected
// graphs, exactly and approximately. It provides:
//
//   - Exact GED via A* search with admissible label/edge lower bounds and a
//     configurable expansion budget (Sec. III-A of the LAN paper).
//   - Beam-search GED (the "Beam" heuristic of Neuhaus, Riesen, Bunke).
//   - Bipartite upper bounds via assignment: the Riesen–Bunke cost model
//     solved with the Hungarian algorithm ("Hung") and a plain label-cost
//     model solved with Jonker–Volgenant ("VJ").
//   - An Ensemble following the paper's ground-truth protocol (exact within
//     a budget, else best-of-three approximations).
//   - A counting wrapper used by the routing layer to account for the
//     number of distance computations (NDC).
//
// All functions in this package use unit edit costs: node insertion,
// node deletion, edge insertion, edge deletion and node relabeling each
// cost 1, matching the paper's GED definition.
package ged

import (
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/lansearch/lan/graph"
)

// Metric computes a distance between two labeled graphs. Implementations
// must be safe for concurrent use.
type Metric interface {
	Distance(g, h *graph.Graph) float64
}

// MetricFunc adapts a function to the Metric interface.
type MetricFunc func(g, h *graph.Graph) float64

// Distance implements Metric.
func (f MetricFunc) Distance(g, h *graph.Graph) float64 { return f(g, h) }

// Exact returns the exact GED of g and h, or ok=false if the A* search
// exceeded maxExpansions node expansions (pass 0 for no budget). When
// ok=false the returned value is a valid upper bound obtained from the best
// complete mapping seen (falling back to a bipartite bound).
func Exact(g, h *graph.Graph, maxExpansions int) (d float64, ok bool) {
	d, _, ok = astarWithMapping(g, h, maxExpansions)
	return d, ok
}

// Unmapped marks a node of g that an alignment deletes (maps to no node
// of h).
const Unmapped = unmapped

// ExactMapping returns an optimal node alignment alongside the exact GED:
// phi[u] is the node of h that u maps to, or Unmapped for a deletion;
// nodes of h that are not images are insertions. ok=false mirrors Exact's
// budget semantics, in which case phi is nil.
func ExactMapping(g, h *graph.Graph, maxExpansions int) (phi []int, d float64, ok bool) {
	d, phi, ok = astarWithMapping(g, h, maxExpansions)
	if !ok {
		return nil, d, false
	}
	return phi, d, true
}

// LowerBound returns an admissible lower bound of the exact GED from the
// node-label multisets and edge counts — cheap enough for filtering
// pipelines (LowerBound(g,h) > tau certifies d(g,h) > tau).
func LowerBound(g, h *graph.Graph) float64 {
	return labelLowerBound(g, h)
}

// MappingCost returns the edit cost induced by an explicit node mapping
// phi (phi[u] in [0,h.N()) or Unmapped). It is an upper bound of the
// exact GED for any injective mapping and equals it for an optimal one.
// It returns an error when phi's length does not match g's node count,
// when a mapping target is out of range, or when phi maps two nodes of g
// to the same node of h.
func MappingCost(g, h *graph.Graph, phi []int) (float64, error) {
	if len(phi) != g.N() {
		return 0, fmt.Errorf("ged: MappingCost: mapping of length %d for %d nodes", len(phi), g.N())
	}
	seen := make(map[int]bool, len(phi))
	for u, w := range phi {
		if w == unmapped {
			continue
		}
		if w < 0 || w >= h.N() {
			return 0, fmt.Errorf("ged: MappingCost: node %d maps to out-of-range node %d (h has %d)", u, w, h.N())
		}
		if seen[w] {
			return 0, fmt.Errorf("ged: MappingCost: mapping not injective (node %d has two preimages)", w)
		}
		seen[w] = true
	}
	return mappingCost(g, h, phi), nil
}

// Beam returns the beam-search GED of g and h with beam width w (an upper
// bound of the exact GED).
func Beam(g, h *graph.Graph, w int) float64 {
	return beamSearch(g, h, w)
}

// Hungarian returns the Riesen–Bunke bipartite upper bound: node assignment
// costs include each node's incident-edge neighborhood, solved by the
// Hungarian algorithm; the returned value is the edit cost induced by the
// resulting node mapping.
func Hungarian(g, h *graph.Graph) float64 {
	m := riesenBunkeCosts(g, h)
	assign := solveHungarian(m)
	return mappingCost(g, h, extractMapping(assign, g.N(), h.N()))
}

// VJ returns a bipartite upper bound using plain label substitution costs
// solved with the Jonker–Volgenant algorithm (the "VJ" baseline of the
// paper's ground-truth protocol).
func VJ(g, h *graph.Graph) float64 {
	m := labelCosts(g, h)
	assign := solveJV(m)
	return mappingCost(g, h, extractMapping(assign, g.N(), h.N()))
}

// Ensemble is the ground-truth distance protocol of the paper (Sec. VII):
// exact GED when the A* search finishes within ExactBudget expansions,
// otherwise the minimum of the VJ, Hungarian and Beam upper bounds.
type Ensemble struct {
	// ExactBudget is the A* expansion budget before falling back to the
	// approximations. Zero means "never attempt exact".
	ExactBudget int
	// BeamWidth is the width used by the Beam fallback (default 16).
	BeamWidth int
}

// Distance implements Metric.
func (e Ensemble) Distance(g, h *graph.Graph) float64 {
	if e.ExactBudget > 0 {
		if d, ok := Exact(g, h, e.ExactBudget); ok {
			return d
		}
	}
	w := e.BeamWidth
	if w <= 0 {
		w = 16
	}
	d := VJ(g, h)
	if d2 := Hungarian(g, h); d2 < d {
		d = d2
	}
	if d3 := Beam(g, h, w); d3 < d {
		d = d3
	}
	return d
}

// counterShards is the number of lock stripes in Counter's memo. The
// parallel index build hits the memo from every worker; with a single
// mutex the workers serialize on cache lookups even though the GED
// computations themselves run concurrently.
const counterShards = 64

type counterShard struct {
	mu    sync.Mutex
	cache map[[2]int]float64
}

// Counter wraps a Metric and counts calls; the routing layer uses it to
// report NDC. It optionally memoizes by (g.ID, h.ID) pairs when both ids
// are non-negative; cache hits do not increment the counter because a
// cached distance costs no GED computation. The memo is sharded across
// lock stripes, so Distance is safe for concurrent use.
type Counter struct {
	Metric Metric

	calls atomic.Int64

	shards [counterShards]counterShard
}

// NewCounter returns a counting, memoizing wrapper around m.
func NewCounter(m Metric) *Counter {
	c := &Counter{Metric: m}
	for i := range c.shards {
		c.shards[i].cache = make(map[[2]int]float64)
	}
	return c
}

// shard picks the lock stripe for a sorted id pair, mixing both ids so
// consecutive pairs spread across stripes.
func (c *Counter) shard(key [2]int) *counterShard {
	h := uint64(key[0])*0x9e3779b97f4a7c15 ^ uint64(key[1])*0xbf58476d1ce4e5b9
	return &c.shards[(h>>32)&(counterShards-1)]
}

// Distance implements Metric, counting and caching the computation.
func (c *Counter) Distance(g, h *graph.Graph) float64 {
	var sh *counterShard
	var key [2]int
	cacheable := g.ID >= 0 && h.ID >= 0
	if cacheable {
		key = [2]int{g.ID, h.ID}
		if g.ID > h.ID {
			key = [2]int{h.ID, g.ID}
		}
		sh = c.shard(key)
		sh.mu.Lock()
		if d, ok := sh.cache[key]; ok {
			sh.mu.Unlock()
			return d
		}
		sh.mu.Unlock()
	}
	d := c.Metric.Distance(g, h)
	c.calls.Add(1)
	if cacheable {
		sh.mu.Lock()
		sh.cache[key] = d
		sh.mu.Unlock()
	}
	return d
}

// Calls returns the number of distance computations performed (cache hits
// excluded).
func (c *Counter) Calls() int64 { return c.calls.Load() }

// Reset zeroes the call counter and clears the memo cache.
func (c *Counter) Reset() {
	c.calls.Store(0)
	for i := range c.shards {
		c.shards[i].mu.Lock()
		c.shards[i].cache = make(map[[2]int]float64)
		c.shards[i].mu.Unlock()
	}
}
