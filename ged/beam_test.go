package ged

import (
	"sort"
	"testing"

	"github.com/lansearch/lan/graph"
)

// referenceBeam is the pre-refactor beam kernel (allocating searchCtx
// states, full per-depth sort) with its one latent bug fixed: the old
// sort.Slice comparator ordered by f alone, leaving tie order to sort
// internals; here ties keep state creation order (sort.SliceStable), which
// is the deterministic contract the arena kernel implements. It exists
// only as the equivalence/allocation baseline for the tests below.
func referenceBeam(g, h *graph.Graph, w int) float64 {
	if w <= 0 {
		w = 8
	}
	if g.N() > h.N() {
		g, h = h, g
	}
	c := newSearchCtx(g, h)
	frontier := []*state{c.initial()}
	if g.N() == 0 {
		return frontier[0].cost
	}
	for depth := 0; depth < g.N(); depth++ {
		u := c.order[depth]
		var next []*state
		for _, s := range frontier {
			for x := 0; x < h.N(); x++ {
				if !isUsed(s.used, x) {
					next = append(next, c.child(s, u, x))
				}
			}
			next = append(next, c.child(s, u, unmapped))
		}
		sort.SliceStable(next, func(i, j int) bool { return next[i].f < next[j].f })
		if len(next) > w {
			next = next[:w]
		}
		frontier = next
	}
	best := frontier[0].cost
	for _, s := range frontier[1:] {
		if s.cost < best {
			best = s.cost
		}
	}
	return best
}

// beamCorpus is the pair corpus the kernel equivalence sweep runs over:
// hand-built edge cases plus generated molecule-like and random-connected
// pairs across several seeds, including asymmetric sizes that exercise the
// internal swap.
func beamCorpus() [][2]*graph.Graph {
	var pairs [][2]*graph.Graph
	add := func(g, h *graph.Graph) { pairs = append(pairs, [2]*graph.Graph{g, h}) }

	add(graph.New(-1), graph.New(-1))
	add(graph.New(-1), path("A"))
	add(path("A"), graph.New(-1))
	add(path("A"), path("B"))
	add(path("A", "B", "C"), path("A", "B", "D"))
	add(path("A", "B", "C"), cycle("A", "B", "C"))
	add(cycle("A", "B", "C", "D"), cycle("A", "B", "C", "D"))
	add(path("A", "B", "C", "D", "E"), path("A", "B"))
	add(path("A", "A"), path("B", "B"))

	labels := []string{"A", "B", "C", "D"}
	for _, seed := range []int64{3, 19, 71} {
		gen := graph.NewGenerator(seed)
		for trial := 0; trial < 12; trial++ {
			g := gen.MoleculeLike(4+trial%6, 1, labels, 0.3)
			add(g, gen.Mutate(g, 1+trial%3, labels))
			add(gen.RandomConnected(2+trial%5, 8, labels, 0.3),
				gen.RandomConnected(2+(trial+2)%5, 8, labels, 0.3))
		}
	}
	return pairs
}

func TestBeamKernelMatchesReference(t *testing.T) {
	widths := []int{1, 2, 3, 8, 32}
	for i, pair := range beamCorpus() {
		g, h := pair[0], pair[1]
		for _, w := range widths {
			got := Beam(g, h, w)
			want := referenceBeam(g, h, w)
			if got != want {
				t.Fatalf("pair %d (|g|=%d |h|=%d) w=%d: arena kernel %v != reference %v",
					i, g.N(), h.N(), w, got, want)
			}
			// The reverse orientation exercises the internal swap branch;
			// it must agree with the reference in that same orientation
			// (beam search itself is only symmetric for unequal sizes).
			if rev, wantRev := Beam(h, g, w), referenceBeam(h, g, w); rev != wantRev {
				t.Fatalf("pair %d w=%d: Beam(h,g)=%v != reference %v", i, w, rev, wantRev)
			}
		}
	}
}

func TestBeamKernelDeterministicAcrossRepeats(t *testing.T) {
	gen := graph.NewGenerator(23)
	labels := []string{"A", "B"}
	// Low label diversity maximizes f ties, the spot where the old kernel's
	// unstable sort could flip frontier contents between runs.
	g := gen.MoleculeLike(9, 1, labels, 0.4)
	h := gen.Mutate(g, 3, labels)
	first := Beam(g, h, 4)
	for i := 0; i < 20; i++ {
		if d := Beam(g, h, 4); d != first {
			t.Fatalf("repeat %d: %v != %v", i, d, first)
		}
	}
}

func TestBeamKernelAllocs(t *testing.T) {
	gen := graph.NewGenerator(41)
	labels := []string{"A", "B", "C"}
	g := gen.MoleculeLike(10, 1, labels, 0.3)
	h := gen.Mutate(g, 3, labels)
	Beam(g, h, 8) // warm the arena pool
	kernel := testing.AllocsPerRun(100, func() { Beam(g, h, 8) })
	ref := testing.AllocsPerRun(100, func() { referenceBeam(g, h, 8) })
	if kernel*10 > ref {
		t.Fatalf("arena kernel allocates %.1f/op vs reference %.1f/op; want >= 10x reduction", kernel, ref)
	}
}

func BenchmarkBeamKernel(b *testing.B) {
	gen := graph.NewGenerator(42)
	labels := []string{"A", "B", "C"}
	g := gen.MoleculeLike(12, 1, labels, 0.3)
	h := gen.Mutate(g, 4, labels)
	for _, w := range []int{2, 8} {
		b.Run(map[int]string{2: "w2", 8: "w8"}[w], func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				Beam(g, h, w)
			}
		})
	}
}

func BenchmarkBeamReference(b *testing.B) {
	gen := graph.NewGenerator(42)
	labels := []string{"A", "B", "C"}
	g := gen.MoleculeLike(12, 1, labels, 0.3)
	h := gen.Mutate(g, 4, labels)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		referenceBeam(g, h, 8)
	}
}
