package lan

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"github.com/lansearch/lan/graph"
	"github.com/lansearch/lan/internal/obs"
	"github.com/lansearch/lan/internal/order"
	"github.com/lansearch/lan/internal/pg"
)

// ShardedIndex searches a database split into independently indexed
// shards, the approach the paper uses to reach million-graph scale
// (Sec. VII-D) and names as future work for distribution: each shard is a
// complete LAN index, queries fan out to all shards (in parallel here,
// sequentially in the paper's single-machine protocol) and the per-shard
// answers are merged by distance.
type ShardedIndex struct {
	shards []*Index
	// offsets[i] is the global id of shard i's graph 0.
	offsets []int
	total   int
	// parallel bounds concurrent shard searches (0 = GOMAXPROCS).
	parallel int
}

// ShardedOptions configure BuildSharded.
type ShardedOptions struct {
	// ShardSize is the target number of graphs per shard (default 1024).
	ShardSize int
	// TrainPerShard is the number of training queries sampled per shard
	// from the provided workload (default: workload size / #shards,
	// minimum 8).
	TrainPerShard int
	// Index options applied to every shard (Seed is offset per shard).
	Options Options
	// Parallel controls concurrent shard searches (default GOMAXPROCS).
	Parallel int
}

// BuildSharded splits db into contiguous shards and builds one LAN index
// per shard. The training workload is shared: each shard trains on the
// queries whose nearest member lies in that shard plus a sample of the
// rest, which in practice is approximated by reusing the whole workload
// per shard (training cost stays bounded by the per-shard caps).
func BuildSharded(db graph.Database, trainQueries []*graph.Graph, so ShardedOptions) (*ShardedIndex, error) {
	if err := db.Validate(); err != nil {
		return nil, fmt.Errorf("lan: %w", err)
	}
	size := so.ShardSize
	if size <= 0 {
		size = 1024
	}
	if size > len(db) {
		size = len(db)
	}
	s := &ShardedIndex{total: len(db), parallel: so.Parallel}
	for start := 0; start < len(db); start += size {
		end := start + size
		if end > len(db) {
			end = len(db)
		}
		part := make([]*graph.Graph, 0, end-start)
		for _, g := range db[start:end] {
			part = append(part, g.Clone())
		}
		shardDB := graph.NewDatabase(part)
		opts := so.Options
		opts.Seed += int64(start)
		idx, err := Build(shardDB, trainQueries, opts)
		if err != nil {
			return nil, fmt.Errorf("lan: shard at %d: %w", start, err)
		}
		s.shards = append(s.shards, idx)
		s.offsets = append(s.offsets, start)
	}
	return s, nil
}

// queryWorkers returns the QueryWorkers setting the shards were built
// with (identical across shards — BuildSharded applies one Options).
func (s *ShardedIndex) queryWorkers() int {
	if len(s.shards) == 0 {
		return 0
	}
	return s.shards[0].engine().Opts.QueryWorkers
}

// Len returns the total number of live (searchable) graphs across
// shards; deletes shrink it. The global id space never shrinks.
func (s *ShardedIndex) Len() int {
	n := 0
	for _, shard := range s.shards {
		n += shard.Len()
	}
	return n
}

// Shards returns the number of shards.
func (s *ShardedIndex) Shards() int { return len(s.shards) }

// shardOf maps a global id to its shard and the local id within it.
func (s *ShardedIndex) shardOf(globalID int) (int, int, error) {
	if globalID < 0 || globalID >= s.total {
		return 0, 0, fmt.Errorf("lan: no graph with id %d", globalID)
	}
	for i := len(s.offsets) - 1; i >= 0; i-- {
		if globalID >= s.offsets[i] {
			return i, globalID - s.offsets[i], nil
		}
	}
	return 0, 0, fmt.Errorf("lan: no graph with id %d", globalID)
}

// Delete tombstones the graph with the given global id in its shard.
// A shard whose members are all deleted keeps serving searches — the
// fan-out skips it (zero results) instead of erroring — so churn can
// drain any shard completely.
func (s *ShardedIndex) Delete(globalID int) error {
	shard, local, err := s.shardOf(globalID)
	if err != nil {
		return err
	}
	return s.shards[shard].Delete(local)
}

// Epoch sums the shard epochs: 0 for a never-mutated sharded index,
// strictly increasing with every applied write, usable as a cache
// invalidation key exactly like Index.Epoch.
func (s *ShardedIndex) Epoch() uint64 {
	var e uint64
	for _, shard := range s.shards {
		e += shard.Epoch()
	}
	return e
}

// Close stops every shard's background optimizer (no-ops for shards
// that never received writes).
func (s *ShardedIndex) Close() error {
	var first error
	for _, shard := range s.shards {
		if err := shard.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Search fans the query out to every shard (in parallel) and merges the
// per-shard k-ANN answers into a global top-k with global graph ids.
// The returned stats aggregate all shards (NDC sums; times are the
// slowest shard's, matching wall-clock behavior).
func (s *ShardedIndex) Search(q *graph.Graph, so SearchOptions) ([]Result, Stats, error) {
	return s.SearchContext(context.Background(), q, so)
}

// SearchContext is Search with cancellation. The context is threaded into
// every per-shard search; the first shard to fail cancels the remaining
// fan-out, and its error — annotated with the failing shard's id — is
// returned after all shard goroutines have drained (no goroutine outlives
// the call). When the caller's own context expires, every shard reports
// the cancellation and the returned error wraps ctx.Err().
func (s *ShardedIndex) SearchContext(ctx context.Context, q *graph.Graph, so SearchOptions) ([]Result, Stats, error) {
	if q == nil || so.K <= 0 {
		return nil, Stats{}, fmt.Errorf("lan: need a query graph and K > 0")
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	// One bounded distance-evaluation pool shared by every shard search of
	// this query: per-shard pools would multiply the configured GED
	// concurrency by the shard count. Nil (sequential per shard) unless the
	// shards were built with QueryWorkers > 1; the shard fan-out itself
	// still runs in parallel either way.
	pool := pg.NewWorkerPool(s.queryWorkers())
	defer pool.Close()
	type shardOut struct {
		res   []Result
		stats Stats
	}
	outs := make([]shardOut, len(s.shards))
	// With tracing on, each shard records into its own child trace (no
	// cross-goroutine contention on the parent); the children are attached
	// in shard order below, so the merged trace is deterministic.
	parent := obs.From(ctx)
	var children []*obs.Trace
	if parent != nil {
		children = make([]*obs.Trace, len(s.shards))
		for i := range children {
			children[i] = obs.NewTrace(fmt.Sprintf("shard-%d", i))
		}
	}
	par := s.parallel
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	var (
		sem      = make(chan struct{}, par)
		wg       sync.WaitGroup
		errMu    sync.Mutex
		firstErr error
	)
	for i := range s.shards {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			sctx := ctx
			if children != nil {
				sctx = obs.With(ctx, children[i])
			}
			res, stats, err := s.shards[i].searchPooled(sctx, q, so, pool)
			if err != nil {
				// Record the first failure with its shard id and abort the
				// remaining fan-out; later cancellation errors from sibling
				// shards are consequences, not causes, and are dropped.
				errMu.Lock()
				if firstErr == nil {
					firstErr = fmt.Errorf("lan: shard %d/%d: %w", i, len(s.shards), err)
					cancel()
				}
				errMu.Unlock()
				return
			}
			outs[i] = shardOut{res, stats}
		}(i)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, Stats{}, firstErr
	}
	for _, c := range children {
		parent.AddShard(c)
	}

	var merged []Result
	var agg Stats
	for i, o := range outs {
		for _, r := range o.res {
			merged = append(merged, Result{ID: r.ID + s.offsets[i], Dist: r.Dist})
		}
		agg.NDC += o.stats.NDC
		agg.InitNDC += o.stats.InitNDC
		agg.RouteNDC += o.stats.RouteNDC
		agg.Explored += o.stats.Explored
		agg.RankerCalls += o.stats.RankerCalls
		agg.ISPredictions += o.stats.ISPredictions
		agg.BatchesOpened += o.stats.BatchesOpened
		agg.GammaSteps += o.stats.GammaSteps
		agg.RankedNeighbors += o.stats.RankedNeighbors
		agg.OpenedNeighbors += o.stats.OpenedNeighbors
		agg.DistCacheHits += o.stats.DistCacheHits
		agg.DistTime += o.stats.DistTime
		agg.ModelTime += o.stats.ModelTime
		if o.stats.InitTime > agg.InitTime {
			agg.InitTime = o.stats.InitTime
		}
		if o.stats.RouteTime > agg.RouteTime {
			agg.RouteTime = o.stats.RouteTime
		}
		if o.stats.Total > agg.Total {
			agg.Total = o.stats.Total
		}
	}
	sort.Slice(merged, func(i, j int) bool {
		return order.ByDistThenID(merged[i].Dist, merged[i].ID, merged[j].Dist, merged[j].ID)
	})
	if len(merged) > so.K {
		merged = merged[:so.K]
	}
	parent.SetConfig(so.Initial.String(), so.Routing.String(), so.K, so.Beam)
	parent.Finalize(agg.NDC, len(merged), agg.Total)
	return merged, agg, nil
}
